open Helpers
module Fault = Lld_disk.Fault
module Recovery = Lld_core.Recovery

(* Crash the device, then mount again. *)
let crash disk =
  Fault.schedule_crash (Disk.fault disk) (Fault.After_writes 0);
  (try Disk.write disk ~offset:0 (Bytes.make 1 'x') with Fault.Crashed -> ());
  ()

let test_recover_freshly_formatted () =
  let disk, lld = fresh_lld () in
  ignore lld;
  crash disk;
  let lld2, report = Lld.recover disk in
  Alcotest.(check int) "nothing allocated" 0 (Lld.allocated_blocks lld2);
  Alcotest.(check int) "no ARUs committed" 0 report.Recovery.arus_committed

let test_recover_unformatted_disk_rejected () =
  let disk = fresh_disk () in
  Alcotest.check_raises "unformatted"
    (Errors.Corrupt "no valid checkpoint: disk not formatted") (fun () ->
      ignore (Lld.recover disk))

let test_flushed_data_survives () =
  let disk, lld = fresh_lld () in
  let l = new_list lld in
  let blocks =
    List.init 10 (fun i ->
        let b = append_block lld l in
        Lld.write lld b (block_data i);
        b)
  in
  Lld.flush lld;
  crash disk;
  let lld2, _ = Lld.recover disk in
  Alcotest.(check bool) "list survives" true (Lld.list_exists lld2 l);
  Alcotest.(check int) "all blocks on list" 10
    (List.length (Lld.list_blocks lld2 l));
  List.iteri
    (fun i b ->
      check_data (Printf.sprintf "block %d data" i) (block_data i)
        (Lld.read lld2 b))
    blocks

let test_unflushed_data_lost () =
  let disk, lld = fresh_lld () in
  let l = new_list lld in
  let b = append_block lld l in
  Lld.write lld b (block_data 1);
  Lld.flush lld;
  Lld.write lld b (block_data 2) (* committed but never flushed *);
  crash disk;
  let lld2, _ = Lld.recover disk in
  check_data "recovers the persistent version" (block_data 1) (Lld.read lld2 b)

let test_committed_aru_survives_crash () =
  let disk, lld = fresh_lld () in
  let l = new_list lld in
  let a = Lld.begin_aru lld in
  let b = Lld.new_block lld ~aru:a ~list:l ~pred:Summary.Head () in
  Lld.write lld ~aru:a b (block_data 42);
  Lld.end_aru lld a;
  Lld.flush lld;
  crash disk;
  let lld2, report = Lld.recover disk in
  Alcotest.(check bool) "ARU replayed" true (report.Recovery.arus_committed >= 1);
  Alcotest.check block_ids "list intact" [ b ] (Lld.list_blocks lld2 l);
  check_data "ARU data recovered" (block_data 42) (Lld.read lld2 b)

let test_uncommitted_aru_all_or_nothing () =
  let disk, lld = fresh_lld () in
  let l = new_list lld in
  let b0 = append_block lld l in
  Lld.write lld b0 (block_data 0);
  Lld.flush lld;
  (* an ARU that writes, inserts and deletes, then the system crashes
     before EndARU *)
  let a = Lld.begin_aru lld in
  Lld.write lld ~aru:a b0 (block_data 99);
  let b1 = Lld.new_block lld ~aru:a ~list:l ~pred:(Summary.After b0) () in
  Lld.write lld ~aru:a b1 (block_data 98);
  Lld.flush lld (* even a flush must not commit the ARU *);
  crash disk;
  let lld2, report = Lld.recover disk in
  check_data "write undone" (block_data 0) (Lld.read lld2 b0);
  Alcotest.check block_ids "insertion undone" [ b0 ] (Lld.list_blocks lld2 l);
  (* the block allocation was scavenged (paper §3.3) *)
  Alcotest.(check bool) "orphan allocation freed" false
    (Lld.block_allocated lld2 b1);
  Alcotest.(check bool) "scavenge counted" true
    (report.Recovery.blocks_scavenged >= 1)

let test_commit_record_not_flushed_discards_aru () =
  (* EndARU ran, but the crash hits before the commit record reaches the
     disk: recovery must discard the whole ARU *)
  let disk, lld = fresh_lld () in
  let l = new_list lld in
  let b0 = append_block lld l in
  Lld.write lld b0 (block_data 0);
  Lld.flush lld;
  let a = Lld.begin_aru lld in
  Lld.write lld ~aru:a b0 (block_data 5);
  Lld.end_aru lld a;
  (* no flush: the commit record sits in the open segment *)
  crash disk;
  let lld2, report = Lld.recover disk in
  check_data "ARU discarded wholesale" (block_data 0) (Lld.read lld2 b0);
  ignore report

let test_torn_segment_write () =
  let disk, lld = fresh_lld () in
  let l = new_list lld in
  let b = append_block lld l in
  Lld.write lld b (block_data 1);
  Lld.flush lld;
  let b2 = append_block lld l in
  Lld.write lld b2 (block_data 2);
  (* the next segment write is torn after 1000 bytes *)
  Fault.schedule_crash (Disk.fault disk)
    (Fault.During_write { write_index = 0; keep_bytes = 1000 });
  (try Lld.flush lld with Fault.Crashed -> ());
  let lld2, report = Lld.recover disk in
  Alcotest.(check bool) "torn segment detected" true
    (report.Recovery.invalid_segments >= 1);
  check_data "earlier state intact" (block_data 1) (Lld.read lld2 b);
  Alcotest.check block_ids "list reflects flushed prefix only" [ b ]
    (Lld.list_blocks lld2 l)

let test_multiple_crash_recover_cycles () =
  let disk, lld = fresh_lld () in
  let l = new_list lld in
  let lld = ref lld in
  let expected = ref [] in
  for round = 1 to 4 do
    let b = append_block !lld l in
    Lld.write !lld b (block_data round);
    Lld.flush !lld;
    expected := !expected @ [ (b, round) ];
    crash disk;
    let recovered, _ = Lld.recover disk in
    lld := recovered;
    List.iter
      (fun (b, tag) ->
        check_data
          (Printf.sprintf "round %d: block %d" round tag)
          (block_data tag)
          (Lld.read !lld b))
      !expected
  done

let test_sequential_mode_crash_semantics () =
  let config = Config.old_lld in
  let disk, lld = fresh_lld ~config () in
  let l = new_list lld in
  let b = append_block lld l in
  Lld.write lld b (block_data 1);
  Lld.flush lld;
  (* an uncommitted sequential ARU: its ops reached the log but no
     commit record did *)
  let a = Lld.begin_aru lld in
  Lld.write lld ~aru:a b (block_data 7);
  Lld.flush lld;
  ignore a;
  crash disk;
  let lld2, _ = Lld.recover ~config disk in
  check_data "uncommitted seq ARU undone" (block_data 1) (Lld.read lld2 b)

let test_sequential_mode_committed_aru_survives () =
  let config = Config.old_lld in
  let disk, lld = fresh_lld ~config () in
  let l = new_list lld in
  let a = Lld.begin_aru lld in
  let b = Lld.new_block lld ~aru:a ~list:l ~pred:Summary.Head () in
  Lld.write lld ~aru:a b (block_data 3);
  Lld.end_aru lld a;
  Lld.flush lld;
  crash disk;
  let lld2, _ = Lld.recover ~config disk in
  check_data "committed seq ARU survives" (block_data 3) (Lld.read lld2 b);
  Alcotest.check block_ids "list intact" [ b ] (Lld.list_blocks lld2 l)

let test_checkpoint_bounds_replay () =
  let disk, lld = fresh_lld () in
  let l = new_list lld in
  let b = append_block lld l in
  Lld.write lld b (block_data 1);
  Lld.checkpoint lld;
  let b2 = append_block lld l in
  Lld.write lld b2 (block_data 2);
  Lld.flush lld;
  crash disk;
  let lld2, report = Lld.recover disk in
  Alcotest.(check bool) "replay bounded by checkpoint" true
    (report.Recovery.covered_seq > 0);
  check_data "pre-checkpoint data" (block_data 1) (Lld.read lld2 b);
  check_data "post-checkpoint data" (block_data 2) (Lld.read lld2 b2)

let test_checkpoint_mid_aru_preserves_atomicity () =
  (* a checkpoint while an ARU is active must neither commit nor lose
     it: the pending entries travel with the checkpoint *)
  let disk, lld = fresh_lld () in
  let l = new_list lld in
  let b0 = append_block lld l in
  Lld.write lld b0 (block_data 0);
  let a = Lld.begin_aru lld in
  Lld.write lld ~aru:a b0 (block_data 50);
  Lld.checkpoint lld;
  (* crash before commit: ARU discarded *)
  crash disk;
  let lld2, _ = Lld.recover disk in
  check_data "mid-ARU checkpoint kept atomicity" (block_data 0)
    (Lld.read lld2 b0)

let test_auto_checkpoint_interval () =
  (* periodic checkpoints bound replay without any explicit call *)
  let config = { Config.default with Config.checkpoint_interval_segments = 2 } in
  let disk, lld = fresh_lld ~config () in
  let l = new_list lld in
  let ckpt0 = (Lld.counters lld).Lld_core.Counters.checkpoints in
  let blocks =
    List.init 400 (fun i ->
        let b = append_block lld l in
        Lld.write lld b (block_data i);
        b)
  in
  Lld.flush lld;
  Alcotest.(check bool) "auto checkpoints happened" true
    ((Lld.counters lld).Lld_core.Counters.checkpoints > ckpt0);
  crash disk;
  let lld2, report = Lld.recover ~config disk in
  Alcotest.(check bool) "replay bounded" true
    (report.Recovery.segments_replayed <= 3);
  List.iteri
    (fun i b -> check_data (Printf.sprintf "block %d" i) (block_data i)
        (Lld.read lld2 b))
    blocks

let test_auto_clean_keeps_disk_usable () =
  (* rewrite far more data than the partition holds: the cleaner must
     keep reclaiming dead segments automatically *)
  let geom = Geometry.v ~num_segments:16 () in
  let _, lld = fresh_lld ~geom () in
  let l = new_list lld in
  let cleaned0 = (Lld.counters lld).Lld_core.Counters.segments_cleaned in
  (* 600 live blocks rewritten repeatedly: each round dirties ~5 log
     segments of a 10-segment log, so reclamation is unavoidable *)
  let blocks = Array.init 600 (fun _ -> append_block lld l) in
  for round = 0 to 7 do
    Array.iter (fun b -> Lld.write lld b (block_data round)) blocks
  done;
  Lld.flush lld;
  Alcotest.(check bool) "cleaner ran" true
    ((Lld.counters lld).Lld_core.Counters.segments_cleaned > cleaned0);
  check_data "latest data intact" (block_data 7) (Lld.read lld blocks.(0));
  Alcotest.(check int) "list intact" 600 (List.length (Lld.list_blocks lld l))

let test_cleaner_preserves_data () =
  (* fill, delete most, force cleaning, verify remaining data *)
  let geom = Geometry.v ~num_segments:16 () in
  let config = { Config.default with Config.auto_clean = false } in
  let disk, lld = fresh_lld ~config ~geom () in
  ignore disk;
  let l = new_list lld in
  let keep = ref [] in
  List.iteri
    (fun i b ->
      Lld.write lld b (block_data i);
      if i mod 10 = 0 then keep := (b, i) :: !keep
      else Lld.delete_block lld b)
    (List.init 300 (fun _ -> append_block lld l));
  Lld.flush lld;
  let free_before = Lld.free_segments lld in
  Lld.clean lld ~target_free:(free_before + 1);
  Alcotest.(check bool) "segments reclaimed" true
    (Lld.free_segments lld > free_before);
  List.iter
    (fun (b, i) ->
      check_data (Printf.sprintf "survivor %d" i) (block_data i)
        (Lld.read lld b))
    !keep

let test_cleaner_then_crash_recovers () =
  let geom = Geometry.v ~num_segments:16 () in
  let config = { Config.default with Config.auto_clean = false } in
  let disk, lld = fresh_lld ~config ~geom () in
  let l = new_list lld in
  let keep = ref [] in
  List.iteri
    (fun i b ->
      Lld.write lld b (block_data i);
      if i mod 7 = 0 then keep := (b, i) :: !keep
      else Lld.delete_block lld b)
    (List.init 300 (fun _ -> append_block lld l));
  Lld.flush lld;
  Lld.clean lld ~target_free:(Lld.free_segments lld + 1);
  crash disk;
  let lld2, _ = Lld.recover ~config disk in
  List.iter
    (fun (b, i) ->
      check_data
        (Printf.sprintf "survivor %d after crash" i)
        (block_data i) (Lld.read lld2 b))
    !keep

let test_media_error_on_checkpoint_region_falls_back () =
  let disk, lld = fresh_lld () in
  let l = new_list lld in
  let b = append_block lld l in
  Lld.write lld b (block_data 8);
  Lld.checkpoint lld (* region 0 holds the newest checkpoint *);
  crash disk;
  (* region written last becomes unreadable; recovery must fall back *)
  Fault.mark_bad (Disk.fault disk) ~offset:0 ~length:4096;
  let lld2, _ = Lld.recover disk in
  check_data "fell back to surviving checkpoint + replay" (block_data 8)
    (Lld.read lld2 b)

(* --- early open: reads served before the replay finishes ----------- *)

module Op = Lld_core.Op
module Ops = Op.Make (Lld)

let early_config = { Config.default with Config.recovery_early_open = true }

(* A crash image with several independent dependency groups, one
   committed ARU and one uncommitted ARU whose allocation the sweep
   must scavenge. *)
let build_crash_state () =
  let disk, lld = fresh_lld () in
  let mk tag =
    let l = new_list lld in
    let bs =
      List.init 6 (fun i ->
          let b = append_block lld l in
          Lld.write lld b (block_data (tag + i));
          b)
    in
    (l, bs, tag)
  in
  let groups = List.init 4 (fun g -> mk (100 * (g + 1))) in
  let l_aru = new_list lld in
  let a = Lld.begin_aru lld in
  let b_aru = Lld.new_block lld ~aru:a ~list:l_aru ~pred:Summary.Head () in
  Lld.write lld ~aru:a b_aru (block_data 7);
  Lld.end_aru lld a;
  let a2 = Lld.begin_aru lld in
  let b_orphan =
    Lld.new_block lld ~aru:a2 ~list:l_aru ~pred:(Summary.After b_aru) ()
  in
  Lld.write lld ~aru:a2 b_orphan (block_data 9);
  ignore a2 (* never committed *);
  Lld.flush lld;
  crash disk;
  (disk, groups, (l_aru, b_aru), b_orphan)

let test_early_open_serves_reads_on_demand () =
  let disk, groups, (l_aru, b_aru), b_orphan = build_crash_state () in
  let lld2, preliminary = Lld.recover ~config:early_config disk in
  Alcotest.(check bool) "replay pending" true (Lld.recovery_pending lld2 > 0);
  Alcotest.(check int) "preliminary report carries no sweep tallies" 0
    preliminary.Recovery.blocks_scavenged;
  Alcotest.(check bool) "independent groups partitioned" true
    (preliminary.Recovery.replay_groups >= List.length groups);
  (* on-demand reads while the replay is pending *)
  List.iter
    (fun (l, bs, tag) ->
      List.iteri
        (fun i b ->
          check_data
            (Printf.sprintf "on-demand read %d" (tag + i))
            (block_data (tag + i))
            (Lld.read lld2 b))
        bs;
      Alcotest.check block_ids "on-demand list walk" bs
        (Lld.list_blocks lld2 l))
    groups;
  check_data "committed ARU served on demand" (block_data 7)
    (Lld.read lld2 b_aru);
  Alcotest.check block_ids "ARU list on demand" [ b_aru ]
    (Lld.list_blocks lld2 l_aru);
  (* the uncommitted ARU's allocation is swept on first touch *)
  Alcotest.(check bool) "orphan swept on touch" false
    (Lld.block_allocated lld2 b_orphan);
  (match Lld.complete_recovery lld2 with
  | None -> Alcotest.fail "recovery should still have been pending"
  | Some report ->
    Alcotest.(check bool) "orphan counted by the sweep" true
      (report.Recovery.blocks_scavenged >= 1));
  Alcotest.(check int) "nothing pending once complete" 0
    (Lld.recovery_pending lld2);
  Alcotest.(check bool) "second completion is a no-op" true
    (Lld.complete_recovery lld2 = None)

let test_early_open_matches_eager_recovery () =
  let disk, groups, (l_aru, b_aru), b_orphan = build_crash_state () in
  let geom = Disk.geometry disk in
  let image = Disk.snapshot disk in
  let load () = Disk.load ~clock:(Clock.create ()) geom (Bytes.copy image) in
  let eager_lld, eager_report = Lld.recover (load ()) in
  let lazy_lld, _preliminary = Lld.recover ~config:early_config (load ()) in
  (* interleave queries through the op hook with the pending replay: each
     read races the on-demand recovery of the group it lands in, while
     the other groups stay unapplied *)
  let same op =
    Alcotest.(check bool)
      (Format.asprintf "op %a agrees while replay pending" Op.pp op)
      true
      (Op.equal_result (Ops.apply lazy_lld op) (Ops.apply eager_lld op))
  in
  List.iter
    (fun (l, bs, _) ->
      same (Op.Read { aru = None; block = List.hd bs });
      same (Op.Block_member { aru = None; block = List.hd bs });
      same (Op.List_blocks { aru = None; list = l }))
    groups;
  same (Op.Read { aru = None; block = b_aru });
  same (Op.List_blocks { aru = None; list = l_aru });
  same (Op.Block_allocated { aru = None; block = b_orphan });
  match Lld.complete_recovery lazy_lld with
  | None -> Alcotest.fail "expected a pending recovery"
  | Some report ->
    (* whether domains ran depends on how many groups the touches left
       behind; every other report field must agree with the eager run *)
    Alcotest.(check bool) "final report equals the eager report" true
      ({ report with Recovery.parallel_replay = false }
      = { eager_report with Recovery.parallel_replay = false });
    List.iter
      (fun (l, bs, tag) ->
        List.iteri
          (fun i b ->
            check_data
              (Printf.sprintf "completed read %d" (tag + i))
              (Lld.read eager_lld b) (Lld.read lazy_lld b))
          bs;
        Alcotest.check block_ids "completed list"
          (Lld.list_blocks eager_lld l)
          (Lld.list_blocks lazy_lld l))
      groups;
    Alcotest.(check bool) "same list universe" true
      (Lld.lists lazy_lld = Lld.lists eager_lld)

let test_early_open_first_mutation_completes () =
  let disk, groups, _, _ = build_crash_state () in
  let lld2, _ = Lld.recover ~config:early_config disk in
  Alcotest.(check bool) "pending after early open" true
    (Lld.recovery_pending lld2 > 0);
  let _, bs, _ = List.hd groups in
  Lld.write lld2 (List.hd bs) (block_data 777);
  Alcotest.(check int) "first mutation completes the replay" 0
    (Lld.recovery_pending lld2);
  Alcotest.(check bool) "explicit completion is then a no-op" true
    (Lld.complete_recovery lld2 = None);
  check_data "mutation applied on the recovered state" (block_data 777)
    (Lld.read lld2 (List.hd bs))

let test_recovery_report_counts () =
  let disk, lld = fresh_lld () in
  let l = new_list lld in
  for i = 1 to 5 do
    let a = Lld.begin_aru lld in
    let b = Lld.new_block lld ~aru:a ~list:l ~pred:Summary.Head () in
    Lld.write lld ~aru:a b (block_data i);
    Lld.end_aru lld a
  done;
  Lld.flush lld;
  crash disk;
  let _, report = Lld.recover disk in
  Alcotest.(check int) "five ARUs committed" 5 report.Recovery.arus_committed;
  Alcotest.(check int) "none discarded" 0 report.Recovery.arus_discarded

let () =
  Alcotest.run "lld_recovery"
    [
      ( "basics",
        [
          Alcotest.test_case "recover freshly formatted" `Quick
            test_recover_freshly_formatted;
          Alcotest.test_case "unformatted disk rejected" `Quick
            test_recover_unformatted_disk_rejected;
          Alcotest.test_case "flushed data survives" `Quick
            test_flushed_data_survives;
          Alcotest.test_case "unflushed data lost" `Quick
            test_unflushed_data_lost;
          Alcotest.test_case "multiple crash/recover cycles" `Quick
            test_multiple_crash_recover_cycles;
        ] );
      ( "aru-atomicity",
        [
          Alcotest.test_case "committed ARU survives" `Quick
            test_committed_aru_survives_crash;
          Alcotest.test_case "uncommitted ARU all-or-nothing" `Quick
            test_uncommitted_aru_all_or_nothing;
          Alcotest.test_case "unflushed commit record discards ARU" `Quick
            test_commit_record_not_flushed_discards_aru;
          Alcotest.test_case "sequential mode crash semantics" `Quick
            test_sequential_mode_crash_semantics;
          Alcotest.test_case "sequential committed ARU survives" `Quick
            test_sequential_mode_committed_aru_survives;
          Alcotest.test_case "report counts" `Quick test_recovery_report_counts;
        ] );
      ( "torn-writes",
        [ Alcotest.test_case "torn segment write" `Quick test_torn_segment_write ]
      );
      ( "checkpoints",
        [
          Alcotest.test_case "checkpoint bounds replay" `Quick
            test_checkpoint_bounds_replay;
          Alcotest.test_case "mid-ARU checkpoint atomicity" `Quick
            test_checkpoint_mid_aru_preserves_atomicity;
          Alcotest.test_case "media error fallback" `Quick
            test_media_error_on_checkpoint_region_falls_back;
        ] );
      ( "early-open",
        [
          Alcotest.test_case "reads served on demand" `Quick
            test_early_open_serves_reads_on_demand;
          Alcotest.test_case "matches eager recovery" `Quick
            test_early_open_matches_eager_recovery;
          Alcotest.test_case "first mutation completes replay" `Quick
            test_early_open_first_mutation_completes;
        ] );
      ( "cleaner",
        [
          Alcotest.test_case "auto checkpoint interval" `Quick
            test_auto_checkpoint_interval;
          Alcotest.test_case "auto clean keeps disk usable" `Quick
            test_auto_clean_keeps_disk_usable;
          Alcotest.test_case "cleaner preserves data" `Quick
            test_cleaner_preserves_data;
          Alcotest.test_case "clean then crash recovers" `Quick
            test_cleaner_then_crash_recovers;
        ] );
    ]
