module Types = Lld_core.Types
module Record = Lld_core.Record
module Splice = Lld_core.Splice
module Summary = Lld_core.Summary
module Errors = Lld_core.Errors

let bid = Types.Block_id.of_int
let lid = Types.List_id.of_int
let aid = Types.Aru_id.of_int

(* ------------------------------------------------------------------ *)
(* The alternative-record mesh                                         *)

let test_fresh_records () =
  let b = Record.fresh_block (bid 3) in
  Alcotest.(check bool) "free" false b.Record.alloc;
  Alcotest.(check bool) "persistent" true
    (Record.version_equal b.Record.version Record.Persistent);
  let l = Record.fresh_list (lid 4) in
  Alcotest.(check bool) "list free" false l.Record.exists

let test_alt_copies_meta_not_data () =
  let anchor = Record.fresh_block (bid 1) in
  anchor.Record.alloc <- true;
  anchor.Record.member_of <- Some (lid 9);
  anchor.Record.successor <- Some (bid 2);
  anchor.Record.stamp <- 55;
  anchor.Record.data <- Some (Lld_util.Blk.of_bytes (Bytes.of_string "never copied"));
  let alt = Record.alt_block Record.Committed ~from:anchor in
  Alcotest.(check bool) "alloc copied" true alt.Record.alloc;
  Alcotest.(check bool) "member copied" true (alt.Record.member_of = Some (lid 9));
  Alcotest.(check int) "stamp copied" 55 alt.Record.stamp;
  Alcotest.(check bool) "data not copied" true (alt.Record.data = None);
  Alcotest.(check int) "durability undetermined" max_int alt.Record.durable_seq

let test_same_id_chain () =
  let anchor = Record.fresh_block (bid 1) in
  let committed = Record.alt_block Record.Committed ~from:anchor in
  let shadow1 = Record.alt_block (Record.Shadow (aid 1)) ~from:anchor in
  let shadow2 = Record.alt_block (Record.Shadow (aid 2)) ~from:anchor in
  Record.insert_alt_block ~anchor committed;
  Record.insert_alt_block ~anchor shadow1;
  Record.insert_alt_block ~anchor shadow2;
  Alcotest.(check int) "three alternatives" 3 (Record.alt_block_count ~anchor);
  let find v expected =
    match fst (Record.find_block ~anchor v) with
    | Some r -> r == expected
    | None -> false
  in
  Alcotest.(check bool) "find committed" true (find Record.Committed committed);
  Alcotest.(check bool) "find shadow 1" true
    (find (Record.Shadow (aid 1)) shadow1);
  Alcotest.(check bool) "find shadow 2" true
    (find (Record.Shadow (aid 2)) shadow2);
  Alcotest.(check bool) "missing shadow" true
    (fst (Record.find_block ~anchor (Record.Shadow (aid 3))) = None);
  Alcotest.(check bool) "persistent is the anchor" true
    (find Record.Persistent anchor)

let test_remove_from_chain () =
  let anchor = Record.fresh_block (bid 1) in
  let c = Record.alt_block Record.Committed ~from:anchor in
  let s = Record.alt_block (Record.Shadow (aid 1)) ~from:anchor in
  Record.insert_alt_block ~anchor c;
  Record.insert_alt_block ~anchor s;
  Record.remove_alt_block ~anchor c;
  Alcotest.(check int) "one left" 1 (Record.alt_block_count ~anchor);
  Alcotest.(check bool) "committed gone" true
    (fst (Record.find_block ~anchor Record.Committed) = None);
  (* removing again is a no-op *)
  Record.remove_alt_block ~anchor c;
  Alcotest.(check int) "still one" 1 (Record.alt_block_count ~anchor)

let test_hops_counted () =
  let anchor = Record.fresh_block (bid 1) in
  for i = 1 to 4 do
    Record.insert_alt_block ~anchor
      (Record.alt_block (Record.Shadow (aid i)) ~from:anchor)
  done;
  (* the last-inserted shadow is first on the chain *)
  let _, hops_near = Record.find_block ~anchor (Record.Shadow (aid 4)) in
  let _, hops_far = Record.find_block ~anchor (Record.Shadow (aid 1)) in
  Alcotest.(check bool)
    (Printf.sprintf "nearer is cheaper (%d < %d)" hops_near hops_far)
    true (hops_near < hops_far)

let test_newest_shadow () =
  let anchor = Record.fresh_block (bid 1) in
  let mk i stamp =
    let s = Record.alt_block (Record.Shadow (aid i)) ~from:anchor in
    s.Record.stamp <- stamp;
    Record.insert_alt_block ~anchor s;
    s
  in
  let _ = mk 1 10 in
  let newest = mk 2 30 in
  let _ = mk 3 20 in
  (match Record.newest_shadow_block ~anchor with
  | Some r, _ -> Alcotest.(check bool) "max stamp wins" true (r == newest)
  | None, _ -> Alcotest.fail "expected a shadow");
  (* also committed records on the chain are ignored *)
  let c = Record.alt_block Record.Committed ~from:anchor in
  c.Record.stamp <- 99;
  Record.insert_alt_block ~anchor c;
  match Record.newest_shadow_block ~anchor with
  | Some r, _ ->
    Alcotest.(check bool) "committed not considered" true (r == newest)
  | None, _ -> Alcotest.fail "expected a shadow"

let test_list_chain () =
  let anchor = Record.fresh_list (lid 1) in
  let c = Record.alt_list Record.Committed ~from:anchor in
  Record.insert_alt_list ~anchor c;
  Alcotest.(check int) "one alt" 1 (Record.alt_list_count ~anchor);
  Alcotest.(check bool) "found" true
    (match fst (Record.find_list ~anchor Record.Committed) with
    | Some r -> r == c
    | None -> false);
  Record.remove_alt_list ~anchor c;
  Alcotest.(check int) "removed" 0 (Record.alt_list_count ~anchor)

(* ------------------------------------------------------------------ *)
(* Splice over a direct (persistent-style) context                     *)

let make_world () =
  let blocks = Hashtbl.create 16 in
  let lists = Hashtbl.create 16 in
  let hops = ref 0 in
  let get_block b =
    match Hashtbl.find_opt blocks (Types.Block_id.to_int b) with
    | Some r -> r
    | None ->
      let r = Record.fresh_block b in
      Hashtbl.replace blocks (Types.Block_id.to_int b) r;
      r
  in
  let get_list l =
    match Hashtbl.find_opt lists (Types.List_id.to_int l) with
    | Some r -> r
    | None ->
      let r = Record.fresh_list l in
      Hashtbl.replace lists (Types.List_id.to_int l) r;
      r
  in
  let ctx =
    {
      Splice.peek_block = get_block;
      get_block;
      peek_list = get_list;
      get_list;
      on_pred_hop = (fun () -> incr hops);
    }
  in
  (ctx, get_block, get_list, hops)

let alloc ctx b =
  let r = ctx.Splice.get_block b in
  r.Record.alloc <- true

let exists ctx l =
  let r = ctx.Splice.get_list l in
  r.Record.exists <- true

let members ctx l =
  let lr = ctx.Splice.peek_list l in
  let rec walk acc = function
    | None -> List.rev acc
    | Some b ->
      walk (Types.Block_id.to_int b :: acc)
        (ctx.Splice.peek_block b).Record.successor
  in
  walk [] lr.Record.first

let test_splice_insert_positions () =
  let ctx, _, get_list, _ = make_world () in
  exists ctx (lid 1);
  List.iter (alloc ctx) [ bid 1; bid 2; bid 3; bid 4 ];
  Alcotest.(check bool) "b1 at head" true
    (Splice.insert ctx ~list:(lid 1) ~block:(bid 1) ~pred:Summary.Head = `Applied);
  Alcotest.(check bool) "b2 after b1" true
    (Splice.insert ctx ~list:(lid 1) ~block:(bid 2) ~pred:(Summary.After (bid 1))
    = `Applied);
  Alcotest.(check bool) "b3 at head" true
    (Splice.insert ctx ~list:(lid 1) ~block:(bid 3) ~pred:Summary.Head = `Applied);
  Alcotest.(check bool) "b4 in the middle" true
    (Splice.insert ctx ~list:(lid 1) ~block:(bid 4) ~pred:(Summary.After (bid 1))
    = `Applied);
  Alcotest.(check (list int)) "order" [ 3; 1; 4; 2 ] (members ctx (lid 1));
  let l = get_list (lid 1) in
  Alcotest.(check (option int)) "first" (Some 3)
    (Option.map Types.Block_id.to_int l.Record.first);
  Alcotest.(check (option int)) "last" (Some 2)
    (Option.map Types.Block_id.to_int l.Record.last)

let test_splice_insert_skips () =
  let ctx, _, _, _ = make_world () in
  exists ctx (lid 1);
  alloc ctx (bid 1);
  Alcotest.(check bool) "nonexistent list skipped" true
    (Splice.insert ctx ~list:(lid 9) ~block:(bid 1) ~pred:Summary.Head = `Skipped);
  Alcotest.(check bool) "unallocated block skipped" true
    (Splice.insert ctx ~list:(lid 1) ~block:(bid 7) ~pred:Summary.Head = `Skipped);
  ignore (Splice.insert ctx ~list:(lid 1) ~block:(bid 1) ~pred:Summary.Head);
  Alcotest.(check bool) "double insert skipped" true
    (Splice.insert ctx ~list:(lid 1) ~block:(bid 1) ~pred:Summary.Head = `Skipped);
  alloc ctx (bid 2);
  Alcotest.(check bool) "pred not on list skipped" true
    (Splice.insert ctx ~list:(lid 1) ~block:(bid 2) ~pred:(Summary.After (bid 7))
    = `Skipped)

let test_splice_unlink_search_cost () =
  let ctx, _, _, hops = make_world () in
  exists ctx (lid 1);
  let n = 10 in
  let prev = ref Summary.Head in
  for i = 1 to n do
    alloc ctx (bid i);
    ignore (Splice.insert ctx ~list:(lid 1) ~block:(bid i) ~pred:!prev);
    prev := Summary.After (bid i)
  done;
  (* unlinking the head needs no search *)
  hops := 0;
  ignore (Splice.unlink ctx ~list:(lid 1) ~block:(bid 1));
  Alcotest.(check int) "head unlink free" 0 !hops;
  (* unlinking the tail walks the remaining list *)
  hops := 0;
  ignore (Splice.unlink ctx ~list:(lid 1) ~block:(bid n));
  Alcotest.(check int) "tail unlink walks" (n - 2) !hops;
  Alcotest.(check (list int)) "rest intact"
    (List.init (n - 2) (fun i -> i + 2))
    (members ctx (lid 1))

let test_splice_unlink_updates_last () =
  let ctx, _, get_list, _ = make_world () in
  exists ctx (lid 1);
  List.iter (alloc ctx) [ bid 1; bid 2 ];
  ignore (Splice.insert ctx ~list:(lid 1) ~block:(bid 1) ~pred:Summary.Head);
  ignore (Splice.insert ctx ~list:(lid 1) ~block:(bid 2) ~pred:(Summary.After (bid 1)));
  ignore (Splice.unlink ctx ~list:(lid 1) ~block:(bid 2));
  let l = get_list (lid 1) in
  Alcotest.(check (option int)) "last back to b1" (Some 1)
    (Option.map Types.Block_id.to_int l.Record.last);
  ignore (Splice.unlink ctx ~list:(lid 1) ~block:(bid 1));
  Alcotest.(check bool) "empty" true
    (l.Record.first = None && l.Record.last = None)

let test_splice_unlink_skips_nonmember () =
  let ctx, _, _, _ = make_world () in
  exists ctx (lid 1);
  alloc ctx (bid 1);
  Alcotest.(check bool) "not a member" true
    (Splice.unlink ctx ~list:(lid 1) ~block:(bid 1) = `Skipped)

let test_splice_delete_list () =
  let ctx, get_block, get_list, hops = make_world () in
  exists ctx (lid 1);
  let prev = ref Summary.Head in
  for i = 1 to 5 do
    alloc ctx (bid i);
    ignore (Splice.insert ctx ~list:(lid 1) ~block:(bid i) ~pred:!prev);
    prev := Summary.After (bid i)
  done;
  hops := 0;
  let deallocated = ref [] in
  Alcotest.(check bool) "applied" true
    (Splice.delete_list ctx ~list:(lid 1)
       ~dealloc:(fun r ->
         deallocated := Types.Block_id.to_int r.Record.id :: !deallocated)
    = `Applied);
  Alcotest.(check int) "no predecessor searches" 0 !hops;
  Alcotest.(check (list int)) "deallocated head-first" [ 1; 2; 3; 4; 5 ]
    (List.rev !deallocated);
  Alcotest.(check bool) "list gone" false (get_list (lid 1)).Record.exists;
  for i = 1 to 5 do
    Alcotest.(check bool) "blocks freed" false (get_block (bid i)).Record.alloc
  done;
  Alcotest.(check bool) "second delete skipped" true
    (Splice.delete_list ctx ~list:(lid 1) ~dealloc:ignore = `Skipped)

let () =
  Alcotest.run "lld_record"
    [
      ( "mesh",
        [
          Alcotest.test_case "fresh records" `Quick test_fresh_records;
          Alcotest.test_case "alt copies meta, not data" `Quick
            test_alt_copies_meta_not_data;
          Alcotest.test_case "same-id chain" `Quick test_same_id_chain;
          Alcotest.test_case "removal" `Quick test_remove_from_chain;
          Alcotest.test_case "hops counted" `Quick test_hops_counted;
          Alcotest.test_case "newest shadow" `Quick test_newest_shadow;
          Alcotest.test_case "list chain" `Quick test_list_chain;
        ] );
      ( "splice",
        [
          Alcotest.test_case "insert positions" `Quick
            test_splice_insert_positions;
          Alcotest.test_case "insert skips" `Quick test_splice_insert_skips;
          Alcotest.test_case "unlink search cost" `Quick
            test_splice_unlink_search_cost;
          Alcotest.test_case "unlink updates last" `Quick
            test_splice_unlink_updates_last;
          Alcotest.test_case "unlink skips non-member" `Quick
            test_splice_unlink_skips_nonmember;
          Alcotest.test_case "delete list walks head-first" `Quick
            test_splice_delete_list;
        ] );
    ]
