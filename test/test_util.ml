module Codec = Lld_util.Bytes_codec
module Lru = Lld_util.Lru
module Vec = Lld_util.Vec

let test_writer_reader_roundtrip () =
  let w = Codec.Writer.create () in
  Codec.Writer.u8 w 0xab;
  Codec.Writer.u16 w 0xbeef;
  Codec.Writer.u32 w 0x12345678;
  Codec.Writer.u64 w 0x1122334455667788L;
  Codec.Writer.string w "hello";
  let buf = Codec.Writer.contents w in
  let r = Codec.Reader.of_bytes buf in
  Alcotest.(check int) "u8" 0xab (Codec.Reader.u8 r);
  Alcotest.(check int) "u16" 0xbeef (Codec.Reader.u16 r);
  Alcotest.(check int) "u32" 0x12345678 (Codec.Reader.u32 r);
  Alcotest.(check int64) "u64" 0x1122334455667788L (Codec.Reader.u64 r);
  Alcotest.(check string) "string" "hello" (Codec.Reader.string r);
  Alcotest.(check int) "exhausted" 0 (Codec.Reader.remaining r)

let test_reader_truncated () =
  let r = Codec.Reader.of_bytes (Bytes.make 2 'x') in
  ignore (Codec.Reader.u16 r);
  Alcotest.check_raises "past end" Codec.Truncated (fun () ->
      ignore (Codec.Reader.u8 r))

let test_reader_window () =
  let buf = Bytes.of_string "abcdefgh" in
  let r = Codec.Reader.of_bytes ~pos:2 ~len:3 buf in
  Alcotest.(check int) "pos" 2 (Codec.Reader.pos r);
  Alcotest.(check string) "window" "cde" (Bytes.to_string (Codec.Reader.raw r 3));
  Alcotest.check_raises "window end" Codec.Truncated (fun () ->
      ignore (Codec.Reader.u8 r))

let test_fixed_offset_accessors () =
  let b = Bytes.make 8 '\000' in
  Codec.set_u16 b 0 0xfffe;
  Codec.set_u32 b 2 0xdeadbeef;
  Alcotest.(check int) "u16" 0xfffe (Codec.get_u16 b 0);
  Alcotest.(check int) "u32" 0xdeadbeef (Codec.get_u32 b 2)

let test_fnv1a_stability () =
  let b = Bytes.of_string "the quick brown fox" in
  let h1 = Codec.fnv1a b in
  let h2 = Codec.fnv1a b in
  Alcotest.(check int64) "deterministic" h1 h2;
  Bytes.set b 0 'T';
  Alcotest.(check bool) "sensitive to change" false (Int64.equal h1 (Codec.fnv1a b))

let test_fnv1a_range () =
  let b = Bytes.of_string "abcdef" in
  let whole = Codec.fnv1a b in
  let prefix = Codec.fnv1a ~pos:0 ~len:3 b in
  let sub = Codec.fnv1a (Bytes.of_string "abc") in
  Alcotest.(check int64) "range equals standalone" sub prefix;
  Alcotest.(check bool) "range differs from whole" false (Int64.equal whole prefix)

let test_lru_basic () =
  let c = Lru.create ~capacity:2 in
  Lru.add c 1 "a";
  Lru.add c 2 "b";
  Alcotest.(check (option string)) "find 1" (Some "a") (Lru.find c 1);
  Lru.add c 3 "c" (* evicts 2, the least recently used *);
  Alcotest.(check (option string)) "2 evicted" None (Lru.find c 2);
  Alcotest.(check (option string)) "1 kept" (Some "a") (Lru.find c 1);
  Alcotest.(check (option string)) "3 kept" (Some "c") (Lru.find c 3);
  Alcotest.(check int) "evictions" 1 (Lru.evictions c)

let test_lru_replace () =
  let c = Lru.create ~capacity:2 in
  Lru.add c 1 "a";
  Lru.add c 1 "a2";
  Alcotest.(check (option string)) "replaced" (Some "a2") (Lru.find c 1);
  Alcotest.(check int) "length" 1 (Lru.length c)

let test_lru_remove_clear () =
  let c = Lru.create ~capacity:4 in
  Lru.add c 1 "a";
  Lru.add c 2 "b";
  Lru.remove c 1;
  Alcotest.(check (option string)) "removed" None (Lru.find c 1);
  Alcotest.(check int) "length" 1 (Lru.length c);
  Lru.clear c;
  Alcotest.(check int) "cleared" 0 (Lru.length c);
  Alcotest.(check (option string)) "gone" None (Lru.find c 2)

let test_lru_remove_range () =
  let c = Lru.create ~capacity:16 in
  for k = 0 to 9 do
    Lru.add c k (string_of_int k)
  done;
  (* small range: the per-key path *)
  Lru.remove_range c ~lo:2 ~hi:4;
  Alcotest.(check int) "length after small range" 7 (Lru.length c);
  Alcotest.(check (option string)) "2 gone" None (Lru.find c 2);
  Alcotest.(check (option string)) "4 gone" None (Lru.find c 4);
  Alcotest.(check (option string)) "5 kept" (Some "5") (Lru.find c 5);
  (* huge range: the list-walk path (range far exceeds occupancy) *)
  Lru.remove_range c ~lo:0 ~hi:1_000_000;
  Alcotest.(check int) "emptied" 0 (Lru.length c);
  (* empty / inverted ranges are no-ops *)
  Lru.add c 1 "a";
  Lru.remove_range c ~lo:5 ~hi:4;
  Alcotest.(check (option string)) "inverted range no-op" (Some "a")
    (Lru.find c 1)

let test_lru_mem_no_touch () =
  let c = Lru.create ~capacity:2 in
  Lru.add c 1 "a";
  Lru.add c 2 "b";
  (* mem must not refresh recency: 1 stays the eviction candidate *)
  Alcotest.(check bool) "mem" true (Lru.mem c 1);
  Lru.add c 3 "c";
  Alcotest.(check (option string)) "1 evicted" None (Lru.find c 1)

let test_lru_invalid_capacity () =
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Lru.create: capacity must be positive") (fun () ->
      ignore (Lru.create ~capacity:0))

let test_vec_basics () =
  let v = Vec.create () in
  Alcotest.(check int) "empty" 0 (Vec.length v);
  Alcotest.(check bool) "no last" true (Vec.last v = None);
  for i = 0 to 99 do
    Vec.push v i
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get" 42 (Vec.get v 42);
  Alcotest.(check bool) "last" true (Vec.last v = Some 99);
  Vec.set v 42 999;
  Alcotest.(check int) "set" 999 (Vec.get v 42);
  Alcotest.(check (list int)) "of_list/to_list" [ 1; 2; 3 ]
    (Vec.to_list (Vec.of_list [ 1; 2; 3 ]))

let test_vec_truncate () =
  let v = Vec.of_list [ 1; 2; 3; 4; 5 ] in
  Vec.truncate v 3;
  Alcotest.(check (list int)) "truncated" [ 1; 2; 3 ] (Vec.to_list v);
  Vec.truncate v 10 (* no-op *);
  Alcotest.(check int) "no-op" 3 (Vec.length v);
  Vec.push v 9;
  Alcotest.(check (list int)) "push after truncate" [ 1; 2; 3; 9 ]
    (Vec.to_list v);
  Alcotest.check_raises "negative" (Invalid_argument "Vec.truncate: negative length")
    (fun () -> Vec.truncate v (-1))

let test_vec_bounds () =
  let v = Vec.of_list [ 1 ] in
  Alcotest.check_raises "get oob" (Invalid_argument "Vec: index out of bounds")
    (fun () -> ignore (Vec.get v 1));
  Alcotest.check_raises "set oob" (Invalid_argument "Vec: index out of bounds")
    (fun () -> Vec.set v (-1) 0)

let vec_model =
  QCheck.Test.make ~name:"vec behaves like a list" ~count:200
    QCheck.(small_list small_int)
    (fun xs ->
      let v = Vec.create () in
      List.iter (Vec.push v) xs;
      Vec.to_list v = xs && Vec.length v = List.length xs)

(* remove_range must behave exactly like per-key removal, including its
   effect on recency order (observed through subsequent evictions). *)
let lru_remove_range_model =
  QCheck.Test.make ~name:"lru remove_range = per-key remove" ~count:300
    QCheck.(
      quad (int_range 1 8)
        (small_list (pair (int_range 0 20) small_int))
        (pair (int_range 0 20) (int_range 0 20))
        (small_list (pair (int_range 0 20) small_int)))
    (fun (cap, ops, (lo, hi), after) ->
      let fill c = List.iter (fun (k, v) -> Lru.add c k v) ops in
      let a = Lru.create ~capacity:cap in
      let b = Lru.create ~capacity:cap in
      fill a;
      fill b;
      Lru.remove_range a ~lo ~hi;
      for k = lo to hi do
        Lru.remove b k
      done;
      (* drive more churn so eviction order differences would surface *)
      List.iter (fun (k, v) -> Lru.add a k v) after;
      List.iter (fun (k, v) -> Lru.add b k v) after;
      let same =
        Lru.length a = Lru.length b
        && List.for_all (fun k -> Lru.find a k = Lru.find b k)
             (List.init 21 Fun.id)
      in
      same)

let lru_churn =
  QCheck.Test.make ~name:"lru never exceeds capacity" ~count:200
    QCheck.(pair (int_range 1 8) (small_list (pair (int_range 0 20) small_int)))
    (fun (cap, ops) ->
      let c = Lru.create ~capacity:cap in
      List.iter (fun (k, v) -> Lru.add c k v) ops;
      Lru.length c <= cap)

let () =
  Alcotest.run "lld_util"
    [
      ( "bytes_codec",
        [
          Alcotest.test_case "writer/reader roundtrip" `Quick
            test_writer_reader_roundtrip;
          Alcotest.test_case "reader truncation" `Quick test_reader_truncated;
          Alcotest.test_case "reader window" `Quick test_reader_window;
          Alcotest.test_case "fixed-offset accessors" `Quick
            test_fixed_offset_accessors;
          Alcotest.test_case "fnv1a stable and sensitive" `Quick
            test_fnv1a_stability;
          Alcotest.test_case "fnv1a ranges" `Quick test_fnv1a_range;
        ] );
      ( "lru",
        [
          Alcotest.test_case "basic insert/evict" `Quick test_lru_basic;
          Alcotest.test_case "replace same key" `Quick test_lru_replace;
          Alcotest.test_case "remove and clear" `Quick test_lru_remove_clear;
          Alcotest.test_case "remove_range" `Quick test_lru_remove_range;
          Alcotest.test_case "mem does not touch recency" `Quick
            test_lru_mem_no_touch;
          Alcotest.test_case "invalid capacity" `Quick test_lru_invalid_capacity;
          QCheck_alcotest.to_alcotest lru_remove_range_model;
          QCheck_alcotest.to_alcotest lru_churn;
        ] );
      ( "vec",
        [
          Alcotest.test_case "basics" `Quick test_vec_basics;
          Alcotest.test_case "truncate" `Quick test_vec_truncate;
          Alcotest.test_case "bounds" `Quick test_vec_bounds;
          QCheck_alcotest.to_alcotest vec_model;
        ] );
    ]
