module Codec = Lld_util.Bytes_codec
module Lru = Lld_util.Lru
module Vec = Lld_util.Vec
module Blk = Lld_util.Blk
module Arena = Lld_util.Arena

let test_writer_reader_roundtrip () =
  let w = Codec.Writer.create () in
  Codec.Writer.u8 w 0xab;
  Codec.Writer.u16 w 0xbeef;
  Codec.Writer.u32 w 0x12345678;
  Codec.Writer.u64 w 0x1122334455667788L;
  Codec.Writer.string w "hello";
  let buf = Codec.Writer.contents w in
  let r = Codec.Reader.of_bytes buf in
  Alcotest.(check int) "u8" 0xab (Codec.Reader.u8 r);
  Alcotest.(check int) "u16" 0xbeef (Codec.Reader.u16 r);
  Alcotest.(check int) "u32" 0x12345678 (Codec.Reader.u32 r);
  Alcotest.(check int64) "u64" 0x1122334455667788L (Codec.Reader.u64 r);
  Alcotest.(check string) "string" "hello" (Codec.Reader.string r);
  Alcotest.(check int) "exhausted" 0 (Codec.Reader.remaining r)

let test_reader_truncated () =
  let r = Codec.Reader.of_bytes (Bytes.make 2 'x') in
  ignore (Codec.Reader.u16 r);
  Alcotest.check_raises "past end" Codec.Truncated (fun () ->
      ignore (Codec.Reader.u8 r))

let test_reader_window () =
  let buf = Bytes.of_string "abcdefgh" in
  let r = Codec.Reader.of_bytes ~pos:2 ~len:3 buf in
  Alcotest.(check int) "pos" 2 (Codec.Reader.pos r);
  Alcotest.(check string) "window" "cde" (Bytes.to_string (Codec.Reader.raw r 3));
  Alcotest.check_raises "window end" Codec.Truncated (fun () ->
      ignore (Codec.Reader.u8 r))

let test_fixed_offset_accessors () =
  let b = Bytes.make 8 '\000' in
  Codec.set_u16 b 0 0xfffe;
  Codec.set_u32 b 2 0xdeadbeef;
  Alcotest.(check int) "u16" 0xfffe (Codec.get_u16 b 0);
  Alcotest.(check int) "u32" 0xdeadbeef (Codec.get_u32 b 2)

let test_fnv1a_stability () =
  let b = Bytes.of_string "the quick brown fox" in
  let h1 = Codec.fnv1a b in
  let h2 = Codec.fnv1a b in
  Alcotest.(check int64) "deterministic" h1 h2;
  Bytes.set b 0 'T';
  Alcotest.(check bool) "sensitive to change" false (Int64.equal h1 (Codec.fnv1a b))

let test_fnv1a_range () =
  let b = Bytes.of_string "abcdef" in
  let whole = Codec.fnv1a b in
  let prefix = Codec.fnv1a ~pos:0 ~len:3 b in
  let sub = Codec.fnv1a (Bytes.of_string "abc") in
  Alcotest.(check int64) "range equals standalone" sub prefix;
  Alcotest.(check bool) "range differs from whole" false (Int64.equal whole prefix)

let test_lru_basic () =
  let c = Lru.create ~capacity:2 in
  Lru.add c 1 "a";
  Lru.add c 2 "b";
  Alcotest.(check (option string)) "find 1" (Some "a") (Lru.find c 1);
  Lru.add c 3 "c" (* evicts 2, the least recently used *);
  Alcotest.(check (option string)) "2 evicted" None (Lru.find c 2);
  Alcotest.(check (option string)) "1 kept" (Some "a") (Lru.find c 1);
  Alcotest.(check (option string)) "3 kept" (Some "c") (Lru.find c 3);
  Alcotest.(check int) "evictions" 1 (Lru.evictions c)

let test_lru_replace () =
  let c = Lru.create ~capacity:2 in
  Lru.add c 1 "a";
  Lru.add c 1 "a2";
  Alcotest.(check (option string)) "replaced" (Some "a2") (Lru.find c 1);
  Alcotest.(check int) "length" 1 (Lru.length c)

let test_lru_remove_clear () =
  let c = Lru.create ~capacity:4 in
  Lru.add c 1 "a";
  Lru.add c 2 "b";
  Lru.remove c 1;
  Alcotest.(check (option string)) "removed" None (Lru.find c 1);
  Alcotest.(check int) "length" 1 (Lru.length c);
  Lru.clear c;
  Alcotest.(check int) "cleared" 0 (Lru.length c);
  Alcotest.(check (option string)) "gone" None (Lru.find c 2)

let test_lru_remove_range () =
  let c = Lru.create ~capacity:16 in
  for k = 0 to 9 do
    Lru.add c k (string_of_int k)
  done;
  (* small range: the per-key path *)
  Lru.remove_range c ~lo:2 ~hi:4;
  Alcotest.(check int) "length after small range" 7 (Lru.length c);
  Alcotest.(check (option string)) "2 gone" None (Lru.find c 2);
  Alcotest.(check (option string)) "4 gone" None (Lru.find c 4);
  Alcotest.(check (option string)) "5 kept" (Some "5") (Lru.find c 5);
  (* huge range: the list-walk path (range far exceeds occupancy) *)
  Lru.remove_range c ~lo:0 ~hi:1_000_000;
  Alcotest.(check int) "emptied" 0 (Lru.length c);
  (* empty / inverted ranges are no-ops *)
  Lru.add c 1 "a";
  Lru.remove_range c ~lo:5 ~hi:4;
  Alcotest.(check (option string)) "inverted range no-op" (Some "a")
    (Lru.find c 1)

let test_lru_mem_no_touch () =
  let c = Lru.create ~capacity:2 in
  Lru.add c 1 "a";
  Lru.add c 2 "b";
  (* mem must not refresh recency: 1 stays the eviction candidate *)
  Alcotest.(check bool) "mem" true (Lru.mem c 1);
  Lru.add c 3 "c";
  Alcotest.(check (option string)) "1 evicted" None (Lru.find c 1)

let test_lru_invalid_capacity () =
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Lru.create: capacity must be positive") (fun () ->
      ignore (Lru.create ~capacity:0))

let test_vec_basics () =
  let v = Vec.create () in
  Alcotest.(check int) "empty" 0 (Vec.length v);
  Alcotest.(check bool) "no last" true (Vec.last v = None);
  for i = 0 to 99 do
    Vec.push v i
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get" 42 (Vec.get v 42);
  Alcotest.(check bool) "last" true (Vec.last v = Some 99);
  Vec.set v 42 999;
  Alcotest.(check int) "set" 999 (Vec.get v 42);
  Alcotest.(check (list int)) "of_list/to_list" [ 1; 2; 3 ]
    (Vec.to_list (Vec.of_list [ 1; 2; 3 ]))

let test_vec_truncate () =
  let v = Vec.of_list [ 1; 2; 3; 4; 5 ] in
  Vec.truncate v 3;
  Alcotest.(check (list int)) "truncated" [ 1; 2; 3 ] (Vec.to_list v);
  Vec.truncate v 10 (* no-op *);
  Alcotest.(check int) "no-op" 3 (Vec.length v);
  Vec.push v 9;
  Alcotest.(check (list int)) "push after truncate" [ 1; 2; 3; 9 ]
    (Vec.to_list v);
  Alcotest.check_raises "negative" (Invalid_argument "Vec.truncate: negative length")
    (fun () -> Vec.truncate v (-1))

let test_vec_bounds () =
  let v = Vec.of_list [ 1 ] in
  Alcotest.check_raises "get oob" (Invalid_argument "Vec: index out of bounds")
    (fun () -> ignore (Vec.get v 1));
  Alcotest.check_raises "set oob" (Invalid_argument "Vec: index out of bounds")
    (fun () -> Vec.set v (-1) 0)

let vec_model =
  QCheck.Test.make ~name:"vec behaves like a list" ~count:200
    QCheck.(small_list small_int)
    (fun xs ->
      let v = Vec.create () in
      List.iter (Vec.push v) xs;
      Vec.to_list v = xs && Vec.length v = List.length xs)

(* remove_range must behave exactly like per-key removal, including its
   effect on recency order (observed through subsequent evictions). *)
let lru_remove_range_model =
  QCheck.Test.make ~name:"lru remove_range = per-key remove" ~count:300
    QCheck.(
      quad (int_range 1 8)
        (small_list (pair (int_range 0 20) small_int))
        (pair (int_range 0 20) (int_range 0 20))
        (small_list (pair (int_range 0 20) small_int)))
    (fun (cap, ops, (lo, hi), after) ->
      let fill c = List.iter (fun (k, v) -> Lru.add c k v) ops in
      let a = Lru.create ~capacity:cap in
      let b = Lru.create ~capacity:cap in
      fill a;
      fill b;
      Lru.remove_range a ~lo ~hi;
      for k = lo to hi do
        Lru.remove b k
      done;
      (* drive more churn so eviction order differences would surface *)
      List.iter (fun (k, v) -> Lru.add a k v) after;
      List.iter (fun (k, v) -> Lru.add b k v) after;
      let same =
        Lru.length a = Lru.length b
        && List.for_all (fun k -> Lru.find a k = Lru.find b k)
             (List.init 21 Fun.id)
      in
      same)

let lru_churn =
  QCheck.Test.make ~name:"lru never exceeds capacity" ~count:200
    QCheck.(pair (int_range 1 8) (small_list (pair (int_range 0 20) small_int)))
    (fun (cap, ops) ->
      let c = Lru.create ~capacity:cap in
      List.iter (fun (k, v) -> Lru.add c k v) ops;
      Lru.length c <= cap)

(* ------------------------------------------------------------- Blk *)

let test_blk_sub_aliases () =
  (* The load-bearing property of the zero-copy path: [sub] is a view,
     not a copy.  Mutations through either window must be visible
     through the other. *)
  let t = Blk.of_string "abcdefgh" in
  let v = Blk.sub t 2 4 in
  Alcotest.(check string) "window" "cdef" (Blk.to_string v);
  Blk.set v 0 'X';
  Alcotest.(check string) "write through sub visible in parent" "abXdefgh"
    (Blk.to_string t);
  Blk.set t 3 'Y';
  Alcotest.(check string) "write through parent visible in sub" "XYef"
    (Blk.to_string v);
  (* nested sub composes offsets *)
  let vv = Blk.sub v 1 2 in
  Alcotest.(check string) "nested sub" "Ye" (Blk.to_string vv)

let test_blk_copy_detaches () =
  let t = Blk.of_string "abcd" in
  let c = Blk.copy (Blk.sub t 1 2) in
  Blk.set t 1 'Z';
  Alcotest.(check string) "copy unaffected by source mutation" "bc"
    (Blk.to_string c);
  Blk.set c 0 'Q';
  Alcotest.(check string) "source unaffected by copy mutation" "aZcd"
    (Blk.to_string t)

let test_blk_blit_and_bounds () =
  let a = Blk.of_string "0123456789" in
  let b = Blk.create 10 in
  Blk.blit a 2 b 5 3;
  Alcotest.(check string) "blit" "\000\000\000\000\000234\000\000"
    (Blk.to_string b);
  Alcotest.check_raises "sub oob" (Invalid_argument "Blk.sub") (fun () ->
      ignore (Blk.sub a 8 3));
  Alcotest.check_raises "blit oob" (Invalid_argument "Blk.blit") (fun () ->
      Blk.blit a 8 b 0 3);
  (* bytes interop *)
  let bytes = Bytes.of_string "xxxx" in
  Blk.blit_to_bytes a 0 bytes 1 3;
  Alcotest.(check string) "blit_to_bytes" "x012" (Bytes.to_string bytes);
  Blk.blit_from_bytes (Bytes.of_string "AB") 0 b 0 2;
  Alcotest.(check string) "blit_from_bytes" "AB" (Blk.to_string (Blk.sub b 0 2))

let test_blk_scalars () =
  let t = Blk.create 16 in
  Blk.set_u16 t 0 0xfffe;
  Blk.set_u32 t 2 0xdeadbeef;
  Blk.set_u64 t 6 0x1122334455667788L;
  Alcotest.(check int) "u16" 0xfffe (Blk.get_u16 t 0);
  Alcotest.(check int) "u32" 0xdeadbeef (Blk.get_u32 t 2);
  Alcotest.(check int64) "u64" 0x1122334455667788L (Blk.get_u64 t 6);
  (* little-endian layout matches Bytes_codec's *)
  let b = Bytes.make 4 '\000' in
  Codec.set_u32 b 0 0xdeadbeef;
  Alcotest.(check string) "LE layout" (Bytes.to_string b)
    (Blk.to_string (Blk.sub t 2 4))

let test_blk_hash64_matches_codec () =
  (* checkpoint chunk trailers must keep their bits: Blk.hash64 must be
     bit-identical to Bytes_codec.hash64 on every length (word loop +
     byte tail) and on unaligned windows. *)
  let data = Bytes.init 67 (fun i -> Char.chr ((i * 37 + 11) land 0xff)) in
  for len = 0 to 24 do
    Alcotest.(check int64)
      (Printf.sprintf "hash64 len=%d" len)
      (Codec.hash64 ~len data)
      (Blk.hash64 ~len (Blk.of_bytes data))
  done;
  Alcotest.(check int64) "hash64 whole" (Codec.hash64 data)
    (Blk.hash64 (Blk.of_bytes data));
  Alcotest.(check int64) "hash64 window"
    (Codec.hash64 ~pos:3 ~len:29 data)
    (Blk.hash64 ~pos:3 ~len:29 (Blk.of_bytes data))

let test_blk_crc32c_vector () =
  (* The canonical Castagnoli check vector. *)
  let v = Blk.of_string "123456789" in
  Alcotest.(check int) "crc32c(123456789)" 0xe3069283 (Blk.crc32c v);
  Alcotest.(check int) "crc32c_bytes agrees" 0xe3069283
    (Blk.crc32c_bytes (Bytes.of_string "123456789"));
  (* incremental == one-shot *)
  let a = Blk.crc32c ~len:4 v in
  Alcotest.(check int) "incremental" 0xe3069283
    (Blk.crc32c ~init:a ~pos:4 ~len:5 v);
  Alcotest.(check int) "empty" 0 (Blk.crc32c ~len:0 v);
  (* sensitive to any flipped byte *)
  let w = Blk.copy v in
  Blk.set w 4 '\000';
  Alcotest.(check bool) "sensitive" false (Blk.crc32c w = 0xe3069283)

let test_blk_writer_reader_roundtrip () =
  let w = Blk.Writer.create ~capacity:4 () in
  Blk.Writer.u8 w 0xab;
  Blk.Writer.u16 w 0xbeef;
  Blk.Writer.u32 w 0x12345678;
  Blk.Writer.u64 w 0x1122334455667788L;
  Blk.Writer.string w "hello";
  Blk.Writer.raw w (Blk.of_string "raw");
  Blk.Writer.raw_bytes w (Bytes.of_string "rb");
  let v = Blk.Writer.contents w in
  let r = Blk.Reader.of_view v in
  Alcotest.(check int) "u8" 0xab (Blk.Reader.u8 r);
  Alcotest.(check int) "u16" 0xbeef (Blk.Reader.u16 r);
  Alcotest.(check int) "u32" 0x12345678 (Blk.Reader.u32 r);
  Alcotest.(check int64) "u64" 0x1122334455667788L (Blk.Reader.u64 r);
  Alcotest.(check string) "string" "hello" (Blk.Reader.string r);
  Alcotest.(check string) "raw" "raw" (Blk.to_string (Blk.Reader.raw r 3));
  Alcotest.(check string) "raw_bytes" "rb"
    (Bytes.to_string (Blk.Reader.raw_bytes r 2));
  Alcotest.(check int) "exhausted" 0 (Blk.Reader.remaining r);
  Alcotest.check_raises "past end" Blk.Truncated (fun () ->
      ignore (Blk.Reader.u8 r))

let test_blk_writer_wire_compat () =
  (* Blk.Writer must emit exactly the bytes Bytes_codec.Writer does —
     the codecs are swapped underneath Summary/Checkpoint without a
     format change. *)
  let bw = Codec.Writer.create () in
  Codec.Writer.u8 bw 7;
  Codec.Writer.u32 bw 0xcafe01;
  Codec.Writer.u64 bw 0x0102030405060708L;
  Codec.Writer.string bw "wire";
  let vw = Blk.Writer.create () in
  Blk.Writer.u8 vw 7;
  Blk.Writer.u32 vw 0xcafe01;
  Blk.Writer.u64 vw 0x0102030405060708L;
  Blk.Writer.string vw "wire";
  Alcotest.(check string) "identical bytes"
    (Bytes.to_string (Codec.Writer.contents bw))
    (Blk.to_string (Blk.Writer.contents vw))

let test_blk_writer_of_view () =
  let target = Blk.create 8 in
  let w = Blk.Writer.of_view target in
  Blk.Writer.u32 w 0x11223344;
  (* writes land in the target, in place *)
  Alcotest.(check int) "in place" 0x11223344 (Blk.get_u32 target 0);
  Blk.Writer.u32 w 0x55667788;
  Alcotest.check_raises "overflow" (Invalid_argument "Blk.Writer: view overflow")
    (fun () -> Blk.Writer.u8 w 1);
  Alcotest.(check int) "length" 8 (Blk.Writer.length w)

let test_blk_reader_raw_aliases () =
  (* Reader.raw is the zero-copy read: a window, not a copy. *)
  let v = Blk.of_string "abcdef" in
  let r = Blk.Reader.of_view v in
  let raw = Blk.Reader.raw r 4 in
  Blk.set v 1 'Z';
  Alcotest.(check string) "alias sees mutation" "aZcd" (Blk.to_string raw)

let test_arena_recycles () =
  let a = Arena.create ~chunk_slots:2 ~slot_bytes:8 () in
  let s1 = Arena.alloc a in
  let s2 = Arena.alloc a in
  Blk.fill s1 'x';
  Alcotest.(check int) "live" 2 (Arena.live a);
  Alcotest.(check int) "one chunk" 1 (Arena.chunks a);
  let s3 = Arena.alloc a in
  Alcotest.(check int) "second chunk" 2 (Arena.chunks a);
  ignore s3;
  Arena.free a s2;
  let s4 = Arena.alloc a in
  Alcotest.(check int) "recycled" 1 (Arena.recycled a);
  (* the recycled slot is the same storage: aliasing is the contract *)
  Blk.fill s4 'y';
  Alcotest.(check string) "s2 storage reused" "yyyyyyyy" (Blk.to_string s2);
  Alcotest.check_raises "wrong size" (Invalid_argument "Arena.free: wrong size")
    (fun () -> Arena.free a (Blk.create 4))

let blk_bytes_model =
  QCheck.Test.make ~name:"blk mirrors bytes under blit/sub/set" ~count:300
    QCheck.(
      pair (small_list (triple (int_range 0 31) (int_range 0 31) small_int))
        (int_range 0 31))
    (fun (ops, _) ->
      let b = Bytes.make 32 '\000' in
      let v = Blk.create 32 in
      List.iter
        (fun (i, j, x) ->
          let c = Char.chr (x land 0xff) in
          Bytes.set b i c;
          Blk.set v i c;
          let len = min (32 - i) (32 - j) in
          let len = min len ((i + j) mod 5) in
          Bytes.blit b i b j len;
          Blk.blit v i v j len)
        ops;
      Bytes.to_string b = Blk.to_string v
      && Blk.equal v (Blk.of_bytes b)
      && Blk.compare v (Blk.of_bytes b) = 0)

let () =
  Alcotest.run "lld_util"
    [
      ( "bytes_codec",
        [
          Alcotest.test_case "writer/reader roundtrip" `Quick
            test_writer_reader_roundtrip;
          Alcotest.test_case "reader truncation" `Quick test_reader_truncated;
          Alcotest.test_case "reader window" `Quick test_reader_window;
          Alcotest.test_case "fixed-offset accessors" `Quick
            test_fixed_offset_accessors;
          Alcotest.test_case "fnv1a stable and sensitive" `Quick
            test_fnv1a_stability;
          Alcotest.test_case "fnv1a ranges" `Quick test_fnv1a_range;
        ] );
      ( "lru",
        [
          Alcotest.test_case "basic insert/evict" `Quick test_lru_basic;
          Alcotest.test_case "replace same key" `Quick test_lru_replace;
          Alcotest.test_case "remove and clear" `Quick test_lru_remove_clear;
          Alcotest.test_case "remove_range" `Quick test_lru_remove_range;
          Alcotest.test_case "mem does not touch recency" `Quick
            test_lru_mem_no_touch;
          Alcotest.test_case "invalid capacity" `Quick test_lru_invalid_capacity;
          QCheck_alcotest.to_alcotest lru_remove_range_model;
          QCheck_alcotest.to_alcotest lru_churn;
        ] );
      ( "vec",
        [
          Alcotest.test_case "basics" `Quick test_vec_basics;
          Alcotest.test_case "truncate" `Quick test_vec_truncate;
          Alcotest.test_case "bounds" `Quick test_vec_bounds;
          QCheck_alcotest.to_alcotest vec_model;
        ] );
      ( "blk",
        [
          Alcotest.test_case "sub aliases" `Quick test_blk_sub_aliases;
          Alcotest.test_case "copy detaches" `Quick test_blk_copy_detaches;
          Alcotest.test_case "blit and bounds" `Quick test_blk_blit_and_bounds;
          Alcotest.test_case "scalar accessors" `Quick test_blk_scalars;
          Alcotest.test_case "hash64 matches Bytes_codec" `Quick
            test_blk_hash64_matches_codec;
          Alcotest.test_case "crc32c check vector" `Quick test_blk_crc32c_vector;
          Alcotest.test_case "writer/reader roundtrip" `Quick
            test_blk_writer_reader_roundtrip;
          Alcotest.test_case "writer wire-compatible with Bytes_codec" `Quick
            test_blk_writer_wire_compat;
          Alcotest.test_case "writer of_view" `Quick test_blk_writer_of_view;
          Alcotest.test_case "reader raw aliases" `Quick
            test_blk_reader_raw_aliases;
          Alcotest.test_case "arena recycles slots" `Quick test_arena_recycles;
          QCheck_alcotest.to_alcotest blk_bytes_model;
        ] );
    ]
