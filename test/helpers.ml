(* Shared fixtures for the test suites. *)

module Clock = Lld_sim.Clock
module Geometry = Lld_disk.Geometry
module Timing = Lld_disk.Timing
module Fault = Lld_disk.Fault
module Disk = Lld_disk.Disk
module Types = Lld_core.Types
module Config = Lld_core.Config
module Lld = Lld_core.Lld
module Errors = Lld_core.Errors
module Summary = Lld_core.Summary

let block_bytes = 4096

(* A small partition (16 MB) so formatting and recovery scans stay fast
   in unit tests. *)
let small_geom = Geometry.small

(* Tests default to the in-memory store, but the whole suite can be
   pointed at real file images with LLD_BACKEND=file (the CI job). *)
let default_backend geom =
  Lld_disk.Backend.of_env ~size:(Geometry.total_bytes geom) ()

let fresh_disk ?(geom = small_geom) ?fault ?backend () =
  let clock = Clock.create () in
  let backend =
    match backend with Some b -> Some b | None -> default_backend geom
  in
  Disk.create ?fault ?backend ~clock geom

let fresh_lld ?(config = Config.default) ?geom ?fault () =
  let disk = fresh_disk ?geom ?fault () in
  let lld = Lld.create ~config disk in
  (disk, lld)

(* A block-sized payload recognisable by its tag. *)
let block_data tag =
  let b = Bytes.make block_bytes '\000' in
  let s = Printf.sprintf "payload-%d-" tag in
  Bytes.blit_string s 0 b 0 (String.length s);
  b

let data_tag b =
  match String.index_opt (Bytes.to_string b) '\000' with
  | Some i -> Bytes.sub_string b 0 i
  | None -> Bytes.to_string b

let check_data msg expected actual =
  Alcotest.(check string) msg (data_tag expected) (data_tag actual)

let new_list lld = Lld.new_list lld ()

let append_block ?aru lld list =
  let pred =
    match Lld.list_blocks lld ?aru list with
    | [] -> Summary.Head
    | blocks -> Summary.After (List.nth blocks (List.length blocks - 1))
  in
  Lld.new_block lld ?aru ~list ~pred ()

let block_ids = Alcotest.testable (Fmt.Dump.list Types.Block_id.pp)
    (fun a b -> List.equal Types.Block_id.equal a b)

let crash_and_recover ?config disk =
  match Lld.recover ?config disk with lld, report -> (lld, report)
