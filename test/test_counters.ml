module Counters = Lld_core.Counters

(* The enumerated field list is the single source of truth for every
   derived operation.  All counter fields are immediate ints, so the
   runtime representation's size is exactly the number of record fields:
   if someone adds a field to the record but not to [fields] (or the
   other way round), this fails. *)
let test_fields_cover_record () =
  Alcotest.(check int)
    "fields list covers every record field"
    (Obj.size (Obj.repr (Counters.create ())))
    (List.length Counters.fields)

let test_field_names_unique () =
  let names = List.map (fun (n, _, _) -> n) Counters.fields in
  Alcotest.(check int)
    "no duplicate names"
    (List.length names)
    (List.length (List.sort_uniq compare names))

let test_getter_setter_roundtrip () =
  List.iteri
    (fun i (name, get, set) ->
      let c = Counters.create () in
      set c (i + 1);
      Alcotest.(check int) (name ^ " set/get") (i + 1) (get c);
      (* no other field moved *)
      List.iter
        (fun (other, get', _) ->
          if other <> name then
            Alcotest.(check int) (other ^ " untouched") 0 (get' c))
        Counters.fields)
    Counters.fields

let fill c =
  List.iteri (fun i (_, _, set) -> set c (100 + i)) Counters.fields

let test_reset_copy_diff_equal () =
  let c = Counters.create () in
  fill c;
  let d = Counters.copy c in
  Alcotest.(check bool) "copy equal" true (Counters.equal c d);
  let diff = Counters.diff ~base:d c in
  Alcotest.(check bool)
    "diff of equals all zero" true
    (List.for_all (fun (_, v) -> v = 0) diff);
  Counters.reset c;
  Alcotest.(check bool) "reset differs" false (Counters.equal c d);
  Alcotest.(check bool)
    "reset zeroes everything" true
    (List.for_all (fun (_, v) -> v = 0) (Counters.to_alist c));
  Alcotest.(check bool)
    "copy was independent" true
    (List.for_all (fun (_, v) -> v >= 100) (Counters.to_alist d))

let test_pp_covers_every_field () =
  let c = Counters.create () in
  fill c;
  let out = Format.asprintf "%a" Counters.pp c in
  List.iter
    (fun (name, get, _) ->
      let line = Printf.sprintf "%-20s %d" name (get c) in
      if
        not
          (List.exists
             (fun l -> String.trim l = String.trim line)
             (String.split_on_char '\n' out))
      then Alcotest.failf "pp output missing %S" line)
    Counters.fields

let test_json_covers_every_field () =
  let c = Counters.create () in
  fill c;
  let json = Counters.to_json_string c in
  List.iter
    (fun (name, get, _) ->
      let frag = Printf.sprintf "\"%s\":%d" name (get c) in
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i =
          i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
        in
        go 0
      in
      if not (contains json frag) then
        Alcotest.failf "JSON missing %S in %s" frag json)
    Counters.fields;
  (* shape: one object, no trailing comma *)
  Alcotest.(check bool) "starts {" true (json.[0] = '{');
  Alcotest.(check bool) "ends }" true (json.[String.length json - 1] = '}')

let () =
  Alcotest.run "counters"
    [
      ( "fields",
        [
          Alcotest.test_case "list covers the record" `Quick
            test_fields_cover_record;
          Alcotest.test_case "names unique" `Quick test_field_names_unique;
          Alcotest.test_case "getter/setter round trip" `Quick
            test_getter_setter_roundtrip;
        ] );
      ( "derived",
        [
          Alcotest.test_case "reset/copy/diff/equal" `Quick
            test_reset_copy_diff_equal;
          Alcotest.test_case "pp covers every field" `Quick
            test_pp_covers_every_field;
          Alcotest.test_case "JSON covers every field" `Quick
            test_json_covers_every_field;
        ] );
    ]
