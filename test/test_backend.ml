(* The storage-backend stack of PR 4: mem/file equivalence, real
   persistence across close/reopen, torn writes on a file image, and the
   error paths that must surface as Invalid_argument / Errors.Corrupt
   rather than raw Unix errors. *)

module Clock = Lld_sim.Clock
module Geometry = Lld_disk.Geometry
module Backend = Lld_disk.Backend
module Fault = Lld_disk.Fault
module Disk = Lld_disk.Disk
module Config = Lld_core.Config
module Counters = Lld_core.Counters
module Lld = Lld_core.Lld
module Errors = Lld_core.Errors
module Fs = Lld_minixfs.Fs
module Setup = Lld_workload.Setup
module Mixed = Lld_workload.Mixed

let geom = Geometry.small
let size = Geometry.total_bytes geom

let temp_image () =
  let path = Filename.temp_file "lld_test" ".img" in
  Sys.remove path;
  path

(* ------------------------------------------------------------------ *)
(* Differential: the same seeded mixed workload on mem and on file     *)

let mixed_params = { Mixed.dirs = 3; files_per_dir = 4; file_bytes = 2048; seed = 7 }

let run_mixed backend =
  let inst = Setup.make ~geom ~backend Setup.New in
  ignore (Mixed.run inst mixed_params);
  let image = Disk.snapshot inst.Setup.disk in
  let lld_counters = Counters.to_json_string (Lld.counters inst.Setup.lld) in
  let disk_counters = Disk.counters inst.Setup.disk in
  let clock_ns = Clock.now_ns inst.Setup.clock in
  Disk.close inst.Setup.disk;
  (image, lld_counters, disk_counters, clock_ns)

let test_differential_mixed () =
  let m_image, m_lld, m_disk, m_ns = run_mixed (Backend.mem ~size) in
  let f_image, f_lld, f_disk, f_ns = run_mixed (Backend.temp_file ~size ()) in
  Alcotest.(check bool)
    "final images byte-identical" true
    (Bytes.equal m_image f_image);
  Alcotest.(check string) "logical-disk counters identical" m_lld f_lld;
  Alcotest.(check bool) "device counters identical" true (m_disk = f_disk);
  Alcotest.(check int) "virtual clocks identical" m_ns f_ns

(* ------------------------------------------------------------------ *)
(* Real persistence: mkfs, close, reopen in a fresh device, recover    *)

let test_file_persistence () =
  let path = temp_image () in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let body = Bytes.make 4096 'p' in
      (* first "process": format, write, checkpoint, close *)
      let () =
        let clock = Clock.create () in
        let backend = Backend.file ~create:true ~size path in
        let disk = Disk.create ~backend ~clock geom in
        let lld = Lld.create disk in
        let fs = Fs.mkfs lld in
        Fs.create fs "/persisted";
        Fs.write_file fs "/persisted" ~off:0 body;
        Fs.flush fs;
        Lld.checkpoint lld;
        Disk.close disk
      in
      (* second "process": a brand-new device over the same image *)
      let clock = Clock.create () in
      let backend = Backend.file ~size path in
      let disk = Disk.create ~backend ~clock geom in
      let lld, _report = Lld.recover disk in
      let fs = Fs.mount lld in
      Alcotest.(check bool) "file survives reopen" true (Fs.exists fs "/persisted");
      let got = Fs.read_file fs "/persisted" ~off:0 ~len:(Bytes.length body) in
      Alcotest.(check bool) "contents survive reopen" true (Bytes.equal got body);
      Disk.close disk)

let test_close_is_idempotent_and_final () =
  let backend = Backend.temp_file ~size () in
  let clock = Clock.create () in
  let disk = Disk.create ~backend ~clock geom in
  Disk.write disk ~offset:0 (Bytes.make 512 'x');
  Disk.close disk;
  Disk.close disk;
  (match Disk.read disk ~offset:0 ~length:512 with
  | _ -> Alcotest.fail "read succeeded on a closed backend"
  | exception Invalid_argument _ -> ())

(* ------------------------------------------------------------------ *)
(* Torn writes: a file image persists exactly the same prefix as mem   *)

let torn_run backend =
  let clock = Clock.create () in
  let fault = Fault.none () in
  let disk = Disk.create ~backend ~fault ~clock geom in
  Disk.write disk ~offset:0 (Bytes.make 4096 'a');
  Fault.schedule_crash fault
    (Fault.During_write { write_index = 0; keep_bytes = 1000 });
  (match Disk.write disk ~offset:8192 (Bytes.make 4096 'b') with
  | () -> Alcotest.fail "torn write did not crash"
  | exception Fault.Crashed -> ());
  let image = Disk.snapshot disk in
  Disk.close disk;
  image

let test_torn_write_on_file () =
  let mem = torn_run (Backend.mem ~size) in
  let file = torn_run (Backend.temp_file ~size ()) in
  Alcotest.(check bool)
    "torn images identical across backends" true (Bytes.equal mem file);
  Alcotest.(check char) "prefix persisted" 'b' (Bytes.get file 8192);
  Alcotest.(check char) "prefix boundary honoured" 'b' (Bytes.get file (8192 + 999));
  Alcotest.(check char) "tail not persisted" '\000' (Bytes.get file (8192 + 1000))

(* ------------------------------------------------------------------ *)
(* Error paths                                                         *)

let check_invalid name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  | exception Invalid_argument _ -> ()

let test_file_errors () =
  let missing = temp_image () in
  check_invalid "missing image" (fun () -> Backend.file ~size missing);
  let short = temp_image () in
  let oc = open_out short in
  output_string oc "too short";
  close_out oc;
  Fun.protect
    ~finally:(fun () -> Sys.remove short)
    (fun () ->
      check_invalid "short image" (fun () -> Backend.file ~size short));
  (* a directory path fails on open/resize, not with a raw Unix_error *)
  check_invalid "directory as image" (fun () ->
      Backend.file ~create:true ~size (Filename.get_temp_dir_name ()))

let test_size_mismatches () =
  let clock = Clock.create () in
  check_invalid "backend/geometry mismatch" (fun () ->
      Disk.create ~backend:(Backend.mem ~size:(size / 2)) ~clock geom);
  check_invalid "Disk.load mismatch" (fun () ->
      Disk.load ~clock geom (Bytes.create 123));
  let disk = Disk.create ~clock geom in
  check_invalid "Disk.restore mismatch" (fun () ->
      Disk.restore disk (Bytes.create 123))

let test_unformatted_image_is_corrupt () =
  let path = temp_image () in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      (* create:true zero-fills: a valid-size but unformatted image *)
      let backend = Backend.file ~create:true ~size path in
      let clock = Clock.create () in
      let disk = Disk.create ~backend ~clock geom in
      (match Lld.recover disk with
      | _ -> Alcotest.fail "recovery succeeded on an unformatted image"
      | exception Errors.Corrupt _ -> ());
      Disk.close disk)

(* ------------------------------------------------------------------ *)
(* Environment selection                                               *)

let test_of_env () =
  let old = Sys.getenv_opt "LLD_BACKEND" in
  Fun.protect
    ~finally:(fun () -> Unix.putenv "LLD_BACKEND" (Option.value old ~default:""))
    (fun () ->
      Unix.putenv "LLD_BACKEND" "file";
      (match Backend.of_env ~size () with
      | None -> Alcotest.fail "LLD_BACKEND=file selected no backend"
      | Some b ->
        Alcotest.(check bool)
          "env backend is a file" true
          (String.length b.Backend.label >= 4
          && String.equal (String.sub b.Backend.label 0 4) "file");
        Alcotest.(check int) "env backend sized to geometry" size b.Backend.size;
        b.Backend.close ());
      Unix.putenv "LLD_BACKEND" "";
      match Backend.of_env ~size () with
      | None -> ()
      | Some b ->
        b.Backend.close ();
        Alcotest.fail "unset LLD_BACKEND still selected a backend")

(* ------------------------------------------------------------------ *)
(* Barriers reach the backend exactly at the commit points             *)

let test_barrier_counted () =
  let barriers = ref 0 in
  let inner = Backend.mem ~size in
  let backend =
    {
      inner with
      Backend.barrier =
        (fun () ->
          incr barriers;
          inner.Backend.barrier ());
    }
  in
  let clock = Clock.create () in
  let disk = Disk.create ~backend ~clock geom in
  let lld = Lld.create disk in
  let list = Lld.new_list lld () in
  let b = Lld.new_block lld ~list ~pred:Lld_core.Summary.Head () in
  Lld.write lld b (Bytes.make (Lld.block_bytes lld) 'q');
  let before = !barriers in
  Lld.flush lld;
  Alcotest.(check bool)
    (Printf.sprintf "flush reaches the barrier (%d -> %d)" before !barriers)
    true (!barriers > before);
  let at_flush = !barriers in
  Lld.checkpoint lld;
  Alcotest.(check bool)
    (Printf.sprintf "checkpoint reaches the barrier (%d -> %d)" at_flush
       !barriers)
    true
    (!barriers > at_flush);
  Alcotest.(check int)
    "barrier charges nothing to the virtual clock after reset"
    (let c2 = Clock.create () in
     let d2 = Disk.create ~clock:c2 geom in
     let n0 = Clock.now_ns c2 in
     Disk.barrier d2;
     Clock.now_ns c2 - n0)
    0

let () =
  Alcotest.run "backend"
    [
      ( "equivalence",
        [
          Alcotest.test_case "mixed workload mem vs file" `Quick
            test_differential_mixed;
          Alcotest.test_case "torn write persists same prefix" `Quick
            test_torn_write_on_file;
        ] );
      ( "persistence",
        [
          Alcotest.test_case "image survives close/reopen" `Quick
            test_file_persistence;
          Alcotest.test_case "close is idempotent and final" `Quick
            test_close_is_idempotent_and_final;
        ] );
      ( "errors",
        [
          Alcotest.test_case "missing/short/directory images" `Quick
            test_file_errors;
          Alcotest.test_case "size mismatches" `Quick test_size_mismatches;
          Alcotest.test_case "unformatted image is Corrupt" `Quick
            test_unformatted_image_is_corrupt;
        ] );
      ( "selection",
        [
          Alcotest.test_case "LLD_BACKEND env" `Quick test_of_env;
          Alcotest.test_case "barrier at commit points, zero cost" `Quick
            test_barrier_counted;
        ] );
    ]
