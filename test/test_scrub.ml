(* Checksummed self-healing (DESIGN.md §5.13): scrub detection and
   repair, superblock generation fallback, and reopen round-trips. *)

open Helpers
module Blk = Lld_util.Blk
module Backend = Lld_disk.Backend
module Geometry = Lld_disk.Geometry
module Disk_layout = Lld_core.Disk_layout
module Superblock = Lld_core.Superblock

let geom = small_geom
let seg_bytes = geom.Geometry.segment_bytes

(* Fill [n] blocks on one list so at least one segment seals, and
   return them with their payload tags. *)
let populate lld n =
  let l = new_list lld in
  let blocks = ref [] in
  for i = 0 to n - 1 do
    let b = append_block lld l in
    Lld.write lld b (block_data i);
    blocks := (b, i) :: !blocks
  done;
  Lld.flush lld;
  List.rev !blocks

let check_all msg lld blocks =
  List.iter
    (fun (b, tag) -> check_data msg (block_data tag) (Lld.read lld b))
    blocks

(* Queue silent bit-rot over [(offset, length)] and apply it now. *)
let rot disk ranges =
  List.iter
    (fun (offset, length) ->
      Fault.corrupt_sector (Disk.fault disk) ~offset ~length)
    ranges;
  Disk.apply_corruption disk

let remount ?config disk =
  let image = Disk.snapshot disk in
  let disk2 = Disk.load ~clock:(Clock.create ()) geom image in
  (disk2, Lld.recover ?config disk2)

(* The first log segment: with a fresh disk the open segment pops the
   free queue in index order, so the first blocks written land here. *)
let first_log_seg = Disk_layout.log_first geom
let first_log_off = Geometry.segment_offset geom first_log_seg

let test_scrub_clean_disk () =
  let _disk, lld = fresh_lld () in
  let blocks = populate lld 140 in
  let r = Lld.scrub lld in
  Alcotest.(check bool) "scanned something" true (r.Lld.scrub_segments > 0);
  Alcotest.(check int) "no bad slots" 0 r.Lld.scrub_bad_slots;
  Alcotest.(check int) "no repairs" 0 r.Lld.scrub_repaired;
  Alcotest.(check int) "no loss" 0 r.Lld.scrub_lost;
  Alcotest.(check int) "superblock intact" 0 r.Lld.scrub_superblock_repaired;
  check_all "data untouched" lld blocks

(* Slot-data rot in a sealed segment: the warm instance still holds
   every block in its LRU cache, so scrub relocates the pristine copies
   — zero data loss, and the healed image survives a remount. *)
let test_scrub_repairs_slot_rot () =
  let disk, lld = fresh_lld () in
  let blocks = populate lld 140 in
  rot disk
    (List.init 8 (fun s -> (first_log_off + (s * block_bytes), 16)));
  let r = Lld.scrub lld in
  Alcotest.(check bool) "rot detected" true (r.Lld.scrub_bad_slots > 0);
  Alcotest.(check int) "all repaired from cache" r.Lld.scrub_bad_slots
    r.Lld.scrub_repaired;
  Alcotest.(check int) "nothing lost" 0 r.Lld.scrub_lost;
  check_all "data intact after repair" lld blocks;
  let _disk2, (lld2, _report) = remount disk in
  check_all "data intact after remount" lld2 blocks;
  let r2 = Lld.scrub lld2 in
  Alcotest.(check int) "image healed durably" 0 r2.Lld.scrub_bad_slots

(* Meta rot (the segment no longer parses) on a cold-cache mount: the
   slot bytes themselves are intact, so scrub salvages them. *)
let test_scrub_salvages_meta_rot () =
  let disk, lld = fresh_lld () in
  let blocks = populate lld 140 in
  Lld.checkpoint lld;
  let _disk2, (lld2, _report) = remount disk in
  let disk2 = Lld.disk lld2 in
  rot disk2 [ (first_log_off + seg_bytes - 32, 8) ];
  (* cold cache: a read through the rotted meta must refuse *)
  let victim, vtag =
    List.find
      (fun (b, _) ->
        match Lld.block_phys lld2 b with
        | Some (seg, _) -> seg = first_log_seg
        | None -> false)
      blocks
  in
  (match Lld.read lld2 victim with
  | _ -> Alcotest.fail "read through rotted segment meta must raise"
  | exception Errors.Corruption (Errors.Invalid_checksum _) -> ());
  let r = Lld.scrub lld2 in
  Alcotest.(check bool) "salvaged" true (r.Lld.scrub_salvaged > 0);
  Alcotest.(check int) "nothing lost" 0 r.Lld.scrub_lost;
  check_data "salvaged read" (block_data vtag) (Lld.read lld2 victim);
  check_all "all data recovered" lld2 blocks;
  let disk3, (lld3, _r) = remount disk2 in
  ignore disk3;
  check_all "healed image remounts" lld3 blocks

(* Slot rot with no cached copy is honestly unrepairable: reported as
   lost, and reads keep refusing rather than returning garbage. *)
let test_scrub_reports_unrepairable () =
  let disk, lld = fresh_lld () in
  let blocks = populate lld 140 in
  Lld.checkpoint lld;
  let _disk2, (lld2, _report) = remount disk in
  let disk2 = Lld.disk lld2 in
  rot disk2 [ (first_log_off, 16) ];
  let r = Lld.scrub lld2 in
  Alcotest.(check int) "one slot lost" 1 r.Lld.scrub_lost;
  Alcotest.(check int) "nothing silently repaired" 0 r.Lld.scrub_repaired;
  let victim, _ =
    List.find
      (fun (b, _) ->
        match Lld.block_phys lld2 b with
        | Some (seg, slot) -> seg = first_log_seg && slot = 0
        | None -> false)
      blocks
  in
  match Lld.read lld2 victim with
  | _ -> Alcotest.fail "lost block must keep raising"
  | exception Errors.Corruption (Errors.Invalid_checksum _) -> ()

let test_superblock_slot_fallback () =
  let disk, lld = fresh_lld () in
  let blocks = populate lld 40 in
  Lld.checkpoint lld;
  (* destroy the newest generation slot: mount follows the survivor.
     (Recovery's own fresh checkpoint rewrites the OTHER slot, so this
     one stays rotted until scrub heals it.) *)
  rot disk [ (block_bytes, 16) ];
  let _disk2, (lld2, report) = remount disk in
  Alcotest.(check bool) "survivor generation found" true
    (report.Lld_core.Recovery.superblock_epoch > 0);
  check_all "data intact" lld2 blocks;
  let r = Lld.scrub lld2 in
  Alcotest.(check int) "bad slot rewritten" 1 r.Lld.scrub_superblock_repaired;
  let disk3 = Lld.disk lld2 in
  (match Superblock.read_slots disk3 with
  | Some _, Some _ -> ()
  | _ -> Alcotest.fail "both generations valid after scrub");
  let r2 = Lld.scrub lld2 in
  Alcotest.(check int) "repair is durable" 0 r2.Lld.scrub_superblock_repaired

let test_scrub_on_mount_knob () =
  let disk, lld = fresh_lld () in
  let blocks = populate lld 40 in
  Lld.checkpoint lld;
  rot disk [ (block_bytes, 16) ];
  let config = { Config.default with Config.scrub_on_mount = true } in
  let _disk2, (lld2, _report) = remount ~config disk in
  let disk3 = Lld.disk lld2 in
  (match Superblock.read_slots disk3 with
  | Some _, Some _ -> ()
  | _ -> Alcotest.fail "mount-time scrub must heal the superblock");
  check_all "data intact" lld2 blocks

let test_all_generations_corrupted () =
  let disk, lld = fresh_lld () in
  ignore (populate lld 40);
  Lld.checkpoint lld;
  (* both generation slots destroyed on a disk whose checkpoints still
     parse: refuse loudly instead of guessing *)
  rot disk [ (0, 16); (block_bytes, 16) ];
  let image = Disk.snapshot disk in
  let disk2 = Disk.load ~clock:(Clock.create ()) geom image in
  match Lld.recover disk2 with
  | _ -> Alcotest.fail "recover must refuse"
  | exception Errors.Corruption Errors.All_generations_corrupted -> ()

(* Golden-image round-trip on the file backend: everything written
   before close is byte-for-byte there after a real reopen. *)
let test_file_backend_reopen_roundtrip () =
  let path = Filename.temp_file "lld_golden" ".img" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let size = Geometry.total_bytes geom in
  let blocks =
    let backend = Backend.file ~create:true ~size path in
    let disk = Disk.create ~backend ~clock:(Clock.create ()) geom in
    let lld = Lld.create disk in
    let blocks = populate lld 140 in
    Lld.checkpoint lld;
    Disk.close disk;
    blocks
  in
  let backend = Backend.file ~size path in
  let disk = Disk.create ~backend ~clock:(Clock.create ()) geom in
  let lld, _report = Lld.recover disk in
  check_all "reopened image serves identical data" lld blocks;
  let r = Lld.scrub lld in
  Alcotest.(check int) "golden image is clean" 0 r.Lld.scrub_bad_slots;
  Disk.close disk

(* Torn write + silent rot interplay: a torn seal (garbage tail
   segment) ends the recovery scan as usual, and scrub still salvages
   an independently rotted sealed segment. *)
let test_torn_write_and_rot_interplay () =
  let disk, lld = fresh_lld () in
  let blocks = populate lld 140 in
  Lld.checkpoint lld;
  (* emulate a torn seal: a free log segment got a garbage prefix *)
  let torn_seg = geom.Geometry.num_segments - 1 in
  let torn = Bytes.make seg_bytes '\xC7' in
  Disk.write disk ~offset:(Geometry.segment_offset geom torn_seg) torn;
  (* plus silent rot in the sealed segment's meta *)
  rot disk [ (first_log_off + seg_bytes - 32, 8) ];
  let _disk2, (lld2, report) = remount disk in
  Alcotest.(check bool) "recovery completes" true
    (report.Lld_core.Recovery.checkpoint_id > 0);
  let r = Lld.scrub lld2 in
  Alcotest.(check int) "no data lost" 0 r.Lld.scrub_lost;
  check_all "all data recovered" lld2 blocks

let () =
  Alcotest.run "lld_scrub"
    [
      ( "scrub",
        [
          Alcotest.test_case "clean disk" `Quick test_scrub_clean_disk;
          Alcotest.test_case "repairs slot rot from cache" `Quick
            test_scrub_repairs_slot_rot;
          Alcotest.test_case "salvages meta rot" `Quick
            test_scrub_salvages_meta_rot;
          Alcotest.test_case "reports unrepairable loss" `Quick
            test_scrub_reports_unrepairable;
        ] );
      ( "superblock",
        [
          Alcotest.test_case "single slot fallback" `Quick
            test_superblock_slot_fallback;
          Alcotest.test_case "scrub-on-mount knob" `Quick
            test_scrub_on_mount_knob;
          Alcotest.test_case "all generations corrupted" `Quick
            test_all_generations_corrupted;
        ] );
      ( "images",
        [
          Alcotest.test_case "file backend reopen roundtrip" `Quick
            test_file_backend_reopen_roundtrip;
          Alcotest.test_case "torn write + rot interplay" `Quick
            test_torn_write_and_rot_interplay;
        ] );
    ]
