open Helpers
module Fault = Lld_disk.Fault
module Rng = Lld_sim.Rng
module Codec = Lld_util.Bytes_codec
module Blk = Lld_util.Blk
module Checkpoint = Lld_core.Checkpoint

(* ------------------------------------------------------------------ *)
(* Model-based equivalence.

   A reference model of the LD semantics under the paper's client
   contract: every client (the simple stream, or one ARU) operates on
   objects it owns — which is exactly the concurrency-control discipline
   the paper assigns to clients (§3).  The driver applies the same
   random operations to the real logical disk and to the model, and
   compares every read and every list walk; at the end it commits some
   ARUs, crashes, recovers, and compares the persistent state. *)

module Model = struct
  type obj_state = {
    mutable lists : (int * int list) list; (* list id -> member block ids *)
    mutable tags : (int * int) list; (* block id -> written tag *)
  }

  let empty () = { lists = []; tags = [] }

  let add_list st l = st.lists <- (l, []) :: st.lists

  let members st l = List.assoc l st.lists

  let set_members st l ms =
    st.lists <- (l, ms) :: List.remove_assoc l st.lists

  let delete_list st l =
    let ms = members st l in
    st.lists <- List.remove_assoc l st.lists;
    st.tags <- List.filter (fun (b, _) -> not (List.mem b ms)) st.tags;
    ms

  let append st l b = set_members st l (members st l @ [ b ])

  let remove_block st l b =
    set_members st l (List.filter (fun x -> x <> b) (members st l));
    st.tags <- List.remove_assoc b st.tags

  let tag st b = List.assoc_opt b st.tags
  let set_tag st b v = st.tags <- (b, v) :: List.remove_assoc b st.tags
end

type actor = {
  aru : Types.Aru_id.t option; (* None = the simple stream *)
  state : Model.obj_state;
  rng : Rng.t;
}

let tag_block tag = Bytes.make block_bytes (Char.chr (tag land 0xff))

let read_tag data = Char.code (Bytes.get data 0)

(* One random operation of one actor; returns false if nothing applies. *)
let actor_step lld (a : actor) =
  let aru = a.aru in
  let st = a.state in
  let own_lists = List.map fst st.Model.lists in
  let pick xs = List.nth xs (Rng.int a.rng (List.length xs)) in
  match Rng.int a.rng 12 with
  | 0 | 1 ->
    let l = Lld.new_list lld ?aru () in
    Model.add_list st (Types.List_id.to_int l);
    true
  | 2 | 3 | 4 | 5 when own_lists <> [] ->
    (* append a block to one of our lists *)
    let l = pick own_lists in
    let ms = Model.members st l in
    let pred =
      match List.rev ms with
      | [] -> Summary.Head
      | last :: _ -> Summary.After (Types.Block_id.of_int last)
    in
    let b = Lld.new_block lld ?aru ~list:(Types.List_id.of_int l) ~pred () in
    Model.append st l (Types.Block_id.to_int b);
    true
  | 6 | 7 | 8 when List.exists (fun (_, ms) -> ms <> []) st.Model.lists ->
    (* write a random tag to one of our blocks *)
    let l, ms = pick (List.filter (fun (_, ms) -> ms <> []) st.Model.lists) in
    ignore l;
    let b = pick ms in
    let tag = 1 + Rng.int a.rng 250 in
    Lld.write lld ?aru (Types.Block_id.of_int b) (tag_block tag);
    Model.set_tag st b tag;
    true
  | 9 when List.exists (fun (_, ms) -> ms <> []) st.Model.lists ->
    (* delete one of our blocks *)
    let l, ms = pick (List.filter (fun (_, ms) -> ms <> []) st.Model.lists) in
    let b = pick ms in
    Lld.delete_block lld ?aru (Types.Block_id.of_int b);
    Model.remove_block st l b;
    true
  | 10 when own_lists <> [] && Rng.int a.rng 4 = 0 ->
    let l = pick own_lists in
    Lld.delete_list lld ?aru (Types.List_id.of_int l);
    ignore (Model.delete_list st l);
    true
  | _ -> false

(* Compare everything the actor can see against its model. *)
let check_actor lld (a : actor) =
  List.iter
    (fun (l, ms) ->
      let got =
        List.map Types.Block_id.to_int
          (Lld.list_blocks lld ?aru:a.aru (Types.List_id.of_int l))
      in
      if got <> ms then
        Alcotest.failf "list %d: model %s, lld %s" l
          (String.concat "," (List.map string_of_int ms))
          (String.concat "," (List.map string_of_int got));
      List.iter
        (fun b ->
          let data = Lld.read lld ?aru:a.aru (Types.Block_id.of_int b) in
          let expect = Option.value ~default:0 (Model.tag a.state b) in
          if read_tag data <> expect then
            Alcotest.failf "block %d: model tag %d, lld %d" b expect
              (read_tag data))
        ms)
    a.state.Model.lists

let model_equivalence_scenario seed =
  let disk, lld = fresh_lld () in
  let rng = Rng.create ~seed in
  let simple = { aru = None; state = Model.empty (); rng = Rng.split rng } in
  let arus =
    List.init 3 (fun _ ->
        {
          aru = Some (Lld.begin_aru lld);
          state = Model.empty ();
          rng = Rng.split rng;
        })
  in
  let actors = simple :: arus in
  (* interleave operations *)
  for _ = 1 to 120 do
    let a = List.nth actors (Rng.int rng (List.length actors)) in
    ignore (actor_step lld a)
  done;
  List.iter (check_actor lld) actors;
  (* commit a prefix of the ARUs; their objects join the simple view *)
  let committed, discarded =
    match arus with
    | [ a1; a2; a3 ] ->
      Lld.end_aru lld (Option.get a1.aru);
      Lld.end_aru lld (Option.get a2.aru);
      ([ a1; a2 ], [ a3 ])
    | _ -> assert false
  in
  Lld.flush lld;
  let visible_after c =
    List.iter
      (fun other -> check_actor lld { other with aru = None })
      (simple :: c)
  in
  visible_after committed;
  (* crash with one ARU still open; recovery must keep exactly the
     committed state *)
  Fault.schedule_crash (Disk.fault disk) (Fault.After_writes 0);
  (try Disk.write disk ~offset:0 (Bytes.make 1 'x') with Fault.Crashed -> ());
  let lld2, _report = Lld.recover disk in
  List.iter
    (fun c -> check_actor lld2 { c with aru = None })
    (simple :: committed);
  (* the uncommitted ARU's blocks were scavenged *)
  List.iter
    (fun d ->
      List.iter
        (fun (_, ms) ->
          List.iter
            (fun b ->
              if Lld.block_allocated lld2 (Types.Block_id.of_int b) then
                Alcotest.failf "uncommitted block %d survived recovery" b)
            ms)
        d.state.Model.lists)
    discarded;
  true

let model_equivalence =
  QCheck.Test.make ~name:"LD equals reference model under random ops" ~count:25
    QCheck.(int_range 0 10_000)
    model_equivalence_scenario

(* The same scenario against the sequential prototype: one ARU at a
   time, same single-stream model. *)
let sequential_model_scenario seed =
  let _, lld = fresh_lld ~config:Config.old_lld () in
  let rng = Rng.create ~seed in
  let simple = { aru = None; state = Model.empty (); rng = Rng.split rng } in
  for _ = 1 to 60 do
    ignore (actor_step lld simple)
  done;
  check_actor lld simple;
  (* one bracketed group *)
  let aru = Lld.begin_aru lld in
  let actor = { simple with aru = Some aru; rng = Rng.split rng } in
  for _ = 1 to 40 do
    ignore (actor_step lld actor)
  done;
  Lld.end_aru lld aru;
  check_actor lld { actor with aru = None };
  true

let sequential_model =
  QCheck.Test.make ~name:"sequential prototype equals model" ~count:25
    QCheck.(int_range 0 10_000)
    sequential_model_scenario

(* ------------------------------------------------------------------ *)
(* ARU atomicity under random crash points.

   Disjoint groups of pre-flushed blocks are each rewritten by one ARU
   with the ARU's tag; the disk crashes at a random segment write.
   After recovery every group must be uniformly tagged or uniformly
   untouched — all or nothing (paper §3). *)

let atomicity_scenario (seed, crash_after) =
  let disk, lld = fresh_lld () in
  let rng = Rng.create ~seed in
  let groups = 12 in
  let blocks_per_group = 4 in
  let list = Lld.new_list lld () in
  let all =
    Array.init (groups * blocks_per_group) (fun _ -> append_block lld list)
  in
  Array.iter (fun b -> Lld.write lld b (tag_block 0)) all;
  Lld.flush lld;
  Fault.schedule_crash (Disk.fault disk) (Fault.After_writes crash_after);
  (try
     for g = 0 to groups - 1 do
       let aru = Lld.begin_aru lld in
       let tag = g + 1 in
       for i = 0 to blocks_per_group - 1 do
         Lld.write lld ~aru all.((g * blocks_per_group) + i) (tag_block tag);
         (* scatter some unrelated simple writes between ARU writes *)
         if Rng.int rng 3 = 0 then begin
           let b = append_block lld list in
           Lld.write lld b (tag_block 255);
           Lld.delete_block lld b
         end
       done;
       Lld.end_aru lld aru;
       if Rng.int rng 4 = 0 then Lld.flush lld
     done;
     Lld.flush lld;
     (* never crashed: force it so recovery still runs *)
     Fault.schedule_crash (Disk.fault disk) (Fault.After_writes 0);
     try Disk.write disk ~offset:0 (Bytes.make 1 'x')
     with Fault.Crashed -> ()
   with Fault.Crashed -> ());
  let lld2, _ = Lld.recover disk in
  for g = 0 to groups - 1 do
    let tags =
      List.init blocks_per_group (fun i ->
          read_tag (Lld.read lld2 all.((g * blocks_per_group) + i)))
    in
    let expect_all v = List.for_all (fun t -> t = v) tags in
    if not (expect_all 0 || expect_all (g + 1)) then
      Alcotest.failf "group %d not atomic after crash@%d: tags %s" g
        crash_after
        (String.concat "," (List.map string_of_int tags))
  done;
  true

let atomicity_fuzz =
  QCheck.Test.make ~name:"ARU writes are all-or-nothing at any crash point"
    ~count:60
    QCheck.(pair (int_range 0 5_000) (int_range 0 12))
    atomicity_scenario

(* ------------------------------------------------------------------ *)
(* LD-level accounting invariant after crash/recovery. *)

let accounting_scenario seed =
  let disk, lld = fresh_lld () in
  let rng = Rng.create ~seed in
  let actor = { aru = None; state = Model.empty (); rng = Rng.split rng } in
  for _ = 1 to 100 do
    ignore (actor_step lld actor)
  done;
  let aru = Lld.begin_aru lld in
  let l = Lld.new_list lld ~aru () in
  let _b = Lld.new_block lld ~aru ~list:l ~pred:Summary.Head () in
  Lld.flush lld;
  Fault.schedule_crash (Disk.fault disk) (Fault.After_writes 0);
  (try Disk.write disk ~offset:0 (Bytes.make 1 'x') with Fault.Crashed -> ());
  let lld2, _ = Lld.recover disk in
  (* every allocated block is on exactly one list *)
  let on_lists =
    List.fold_left
      (fun acc l -> acc + List.length (Lld.list_blocks lld2 l))
      0 (Lld.lists lld2)
  in
  let orphans = List.length (Lld.orphan_blocks lld2) in
  if Lld.allocated_blocks lld2 <> on_lists + orphans then
    Alcotest.failf "allocated %d <> on lists %d + orphans %d"
      (Lld.allocated_blocks lld2) on_lists orphans;
  if orphans <> 0 then
    Alcotest.failf "recovery left %d orphan blocks unscavenged" orphans;
  true

let accounting_fuzz =
  QCheck.Test.make ~name:"allocation accounting holds after recovery" ~count:30
    QCheck.(int_range 0 10_000)
    accounting_scenario

(* ------------------------------------------------------------------ *)
(* Codec round-trips. *)

let gen_entry =
  let open QCheck.Gen in
  let block = map Types.Block_id.of_int (int_range 0 100_000) in
  let list = map Types.List_id.of_int (int_range 0 100_000) in
  let aruid = map Types.Aru_id.of_int (int_range 0 1_000_000) in
  let stamp = int_range 0 1_000_000_000 in
  let stream =
    oneof [ return Summary.Simple; map (fun a -> Summary.In_aru a) aruid ]
  in
  let pred =
    oneof [ return Summary.Head; map (fun b -> Summary.After b) block ]
  in
  let op =
    oneof
      [
        map3
          (fun block list stamp -> Summary.Alloc { block; list; stamp })
          block list stamp;
        map3
          (fun block slot stamp -> Summary.Write { block; slot; stamp })
          block (int_range 0 4096) stamp;
        map3
          (fun list block pred -> Summary.Link { list; block; pred })
          list block pred;
        map2 (fun list block -> Summary.Unlink { list; block }) list block;
        map3
          (fun list stamp owner -> Summary.New_list { list; stamp; owner })
          list stamp (opt aruid);
        map (fun list -> Summary.Delete_list { list }) list;
        map2 (fun block stamp -> Summary.Dealloc { block; stamp }) block stamp;
        map (fun aru -> Summary.Commit { aru }) aruid;
      ]
  in
  map2 (fun stream op -> { Summary.stream; op }) stream op

let entry_roundtrip =
  QCheck.Test.make ~name:"summary entry encode/decode roundtrip" ~count:500
    (QCheck.make gen_entry)
    (fun entry ->
      let w = Blk.Writer.create () in
      Summary.encode w entry;
      let buf = Blk.Writer.contents w in
      Blk.length buf = Summary.encoded_size entry
      && Summary.decode (Blk.Reader.of_view buf) = entry)

let gen_snapshot =
  let open QCheck.Gen in
  let block_entry =
    map3
      (fun b_id (b_member, b_succ) (b_phys, b_stamp) ->
        { Checkpoint.b_id; b_member; b_succ; b_phys; b_stamp })
      (int_range 0 100_000)
      (pair (opt (int_range 0 1000)) (opt (int_range 0 100_000)))
      (pair (opt (pair (int_range 0 800) (int_range 0 127))) (int_range 0 1_000_000))
  in
  let list_entry =
    map3
      (fun l_id (l_first, l_last) l_stamp ->
        { Checkpoint.l_id; l_first; l_last; l_stamp; l_owner = None })
      (int_range 1 100_000)
      (pair (opt (int_range 0 100_000)) (opt (int_range 0 100_000)))
      (int_range 0 1_000_000)
  in
  let pending_entry =
    map2
      (fun b seg ->
        {
          Checkpoint.pe_op =
            Summary.Write { block = Types.Block_id.of_int b; slot = 1; stamp = 7 };
          pe_seg = seg;
        })
      (int_range 0 100_000) (int_range 0 800)
  in
  let pending = small_list (pair (int_range 1 1000) (small_list pending_entry)) in
  map3
    (fun (ckpt_id, covered_seq) (blocks, lists) pending ->
      {
        Checkpoint.ckpt_id = ckpt_id + 1;
        kind =
          (if ckpt_id mod 3 = 0 then Checkpoint.Delta { base_id = ckpt_id }
           else Checkpoint.Full);
        covered_seq;
        next_seq = covered_seq + 1;
        stamp = 1 + covered_seq;
        next_aru = 1;
        next_gid = 1;
        blocks;
        lists;
        dead_blocks = (if ckpt_id mod 3 = 0 then [ 1; 5; 9 ] else []);
        dead_lists = (if ckpt_id mod 3 = 0 then [ 2 ] else []);
        pending;
        free_order = [];
        prepared = (if ckpt_id mod 4 = 0 then [ (7, 3, 1); (9, 4, 0) ] else []);
      })
    (pair (int_range 0 100_000) (int_range 0 100_000))
    (pair (small_list block_entry) (small_list list_entry))
    pending

let snapshot_roundtrip =
  QCheck.Test.make ~name:"checkpoint snapshot encode/decode roundtrip"
    ~count:200 (QCheck.make gen_snapshot)
    (fun snap -> Checkpoint.decode (Checkpoint.encode snap) = snap)

(* ------------------------------------------------------------------ *)
(* Decoder robustness: arbitrary bytes must never escape the declared
   failure modes (None / Corrupt / Truncated) — what a torn or
   scribbled-on disk hands recovery. *)

let segment_parse_total =
  QCheck.Test.make ~name:"Segment.parse is total on arbitrary images" ~count:100
    QCheck.(pair (int_range 0 10_000) (int_range 0 100))
    (fun (seed, flips) ->
      let geom = Lld_disk.Geometry.small in
      let rng = Rng.create ~seed in
      (* start from a valid sealed image so the header area is plausible,
         then flip random bytes *)
      let s = Lld_core.Segment.create geom ~seq:3 ~disk_index:1 in
      for i = 0 to 4 do
        ignore
          (Lld_core.Segment.put_block s ~scope:Lld_core.Segment.Simple_scope
             ~allow_cross_scope:true
             (Types.Block_id.of_int i)
             (Blk.of_bytes (Bytes.make 4096 'x')));
        Lld_core.Segment.add_entry s
          {
            Summary.stream = Summary.Simple;
            op = Summary.Write { block = Types.Block_id.of_int i; slot = i; stamp = i };
          }
      done;
      let image = Blk.of_bytes (Blk.to_bytes (Lld_core.Segment.seal s)) in
      for _ = 1 to flips do
        let pos = Rng.int rng (Blk.length image) in
        Blk.set_u8 image pos (Rng.int rng 256)
      done;
      match Lld_core.Segment.parse geom image with
      | Some _ | None -> true)

let summary_decode_total =
  QCheck.Test.make ~name:"Summary.decode fails only with Corrupt/Truncated"
    ~count:300
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let len = 1 + Rng.int rng 64 in
      let buf = Bytes.init len (fun _ -> Char.chr (Rng.int rng 256)) in
      match Summary.decode (Blk.Reader.of_view (Blk.of_bytes buf)) with
      | _ -> true
      | exception (Errors.Corrupt _ | Blk.Truncated) -> true)

let checkpoint_decode_total =
  QCheck.Test.make ~name:"Checkpoint.decode fails only with Corrupt" ~count:200
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create ~seed in
      (* corrupt a valid payload: keeps the version plausible so the
         decoder gets deep before failing *)
      let snap =
        {
          Checkpoint.ckpt_id = 3;
          kind = Checkpoint.Full;
          covered_seq = 9;
          next_seq = 10;
          stamp = 100;
          next_aru = 4;
          next_gid = 2;
          blocks =
            List.init 10 (fun i ->
                {
                  Checkpoint.b_id = i;
                  b_member = Some i;
                  b_succ = None;
                  b_phys = Some (1, i);
                  b_stamp = i;
                });
          lists = [];
          dead_blocks = [];
          dead_lists = [];
          pending = [];
          free_order = [ 5; 6 ];
          prepared = [];
        }
      in
      let buf = Blk.of_bytes (Blk.to_bytes (Checkpoint.encode snap)) in
      for _ = 1 to 1 + Rng.int rng 8 do
        let pos = Rng.int rng (Blk.length buf) in
        Blk.set_u8 buf pos (Rng.int rng 256)
      done;
      match Checkpoint.decode buf with
      | _ -> true
      | exception Errors.Corrupt _ -> true)

(* ------------------------------------------------------------------ *)
(* Cost model independence: semantics are identical under the free and
   the calibrated cost models. *)

let cost_independence_scenario seed =
  let run cost =
    let config = { Config.default with Config.cost } in
    let _, lld = fresh_lld ~config () in
    let rng = Rng.create ~seed in
    let actor = { aru = None; state = Model.empty (); rng = Rng.split rng } in
    for _ = 1 to 80 do
      ignore (actor_step lld actor)
    done;
    ( List.map
        (fun (l, _) ->
          List.map Types.Block_id.to_int
            (Lld.list_blocks lld (Types.List_id.of_int l)))
        actor.state.Model.lists,
      Lld.allocated_blocks lld )
  in
  run Lld_sim.Cost.sparc5_70 = run Lld_sim.Cost.free

let cost_independence =
  QCheck.Test.make ~name:"cost model never affects semantics" ~count:20
    QCheck.(int_range 0 10_000)
    cost_independence_scenario

(* ------------------------------------------------------------------ *)
(* Block_map vs a naive free-set model: the bitset-plus-hint allocator
   must behave exactly like "allocate the lowest free identifier",
   including the hint retreating on a release below it and a full
   drain / rebuild / refill cycle. *)

module Block_map = Lld_core.Block_map

let block_map_cap = 24

let block_map_scenario ops =
  let bm = Block_map.create ~capacity:block_map_cap in
  let held = Hashtbl.create 16 in
  let model_alloc () =
    let rec scan i =
      if i >= block_map_cap then None
      else if Hashtbl.mem held i then scan (i + 1)
      else Some i
    in
    scan 0
  in
  List.iter
    (fun op ->
      match op with
      | `Alloc ->
        let expect = model_alloc () in
        let got = Option.map Types.Block_id.to_int (Block_map.alloc_id bm) in
        if got <> expect then
          QCheck.Test.fail_reportf "alloc: map gave %s, model expects %s"
            (match got with Some i -> string_of_int i | None -> "none")
            (match expect with Some i -> string_of_int i | None -> "none");
        (match got with Some i -> Hashtbl.replace held i () | None -> ())
      | `Release i ->
        let i = i mod block_map_cap in
        (* releasing an already-free identifier is a no-op in both *)
        Block_map.release_id bm (Types.Block_id.of_int i);
        Hashtbl.remove held i)
    ops;
  if Block_map.allocated_count bm <> Hashtbl.length held then
    QCheck.Test.fail_reportf "allocated_count %d, model holds %d"
      (Block_map.allocated_count bm)
      (Hashtbl.length held);
  (* rebuild from the persistent flags (recovery path), then drain: the
     refill must hand out exactly the model's free set in ascending
     order and report exhaustion after *)
  Block_map.iter bm (fun r ->
      r.Lld_core.Record.alloc <-
        Hashtbl.mem held (Types.Block_id.to_int r.Lld_core.Record.id));
  Block_map.rebuild_free bm;
  let expected_free =
    List.filter
      (fun i -> not (Hashtbl.mem held i))
      (List.init block_map_cap Fun.id)
  in
  let drained =
    List.map
      (fun _ ->
        match Block_map.alloc_id bm with
        | Some b -> Types.Block_id.to_int b
        | None -> QCheck.Test.fail_report "exhausted before the model")
      expected_free
  in
  if drained <> expected_free then
    QCheck.Test.fail_reportf "drain order [%s], model free set [%s]"
      (String.concat ";" (List.map string_of_int drained))
      (String.concat ";" (List.map string_of_int expected_free));
  Block_map.alloc_id bm = None

let block_map_ops =
  let open QCheck.Gen in
  let op =
    frequency
      [
        (3, return `Alloc);
        (2, map (fun i -> `Release i) (int_range 0 (block_map_cap - 1)));
      ]
  in
  let print_op = function
    | `Alloc -> "alloc"
    | `Release i -> Printf.sprintf "release %d" i
  in
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map print_op ops))
    (list_size (int_range 0 120) op)

let block_map_model =
  QCheck.Test.make ~name:"Block_map allocates like the naive free-set model"
    ~count:300 block_map_ops block_map_scenario

(* ------------------------------------------------------------------ *)
(* Sharded placement: the pure id-striping maps behind {!Shard} must be
   total (every identifier routes to exactly one shard and back),
   dense (the k-th global id landing on a shard is that shard's k-th
   local id — what lets each shard run its own lowest-free allocator
   unchanged), and balanced (round-robin striping keeps per-shard
   counts within one of each other). *)

module Shard = Lld_core.Shard

let placement_total =
  QCheck.Test.make ~name:"shard placement total: roundtrip and range"
    ~count:500
    QCheck.(pair (int_range 1 8) (int_range 0 10_000))
    (fun (shards, g) ->
      let bs = Shard.block_shard ~shards g in
      let bl = Shard.block_local ~shards g in
      let lg = g + 1 (* list ids are 1-based *) in
      let ls = Shard.list_shard ~shards lg in
      let ll = Shard.list_local ~shards lg in
      0 <= bs && bs < shards && 0 <= bl
      && Shard.block_global ~shards ~shard:bs bl = g
      && 0 <= ls && ls < shards && 1 <= ll
      && Shard.list_global ~shards ~shard:ls ll = lg)

let placement_dense =
  QCheck.Test.make
    ~name:"shard placement dense: locals enumerate 0..k-1 per shard"
    ~count:200
    QCheck.(pair (int_range 1 8) (int_range 1 500))
    (fun (shards, n) ->
      (* walking globals in order, each shard must see its locals in
         order 0,1,2,…  (lists: 1,2,3,…) with no gaps — the per-shard
         lowest-free-id allocator depends on it *)
      let next_b = Array.make shards 0 in
      let next_l = Array.make shards 1 in
      let ok = ref true in
      for g = 0 to n - 1 do
        let s = Shard.block_shard ~shards g in
        if Shard.block_local ~shards g <> next_b.(s) then ok := false;
        next_b.(s) <- next_b.(s) + 1
      done;
      for g = 1 to n do
        let s = Shard.list_shard ~shards g in
        if Shard.list_local ~shards g <> next_l.(s) then ok := false;
        next_l.(s) <- next_l.(s) + 1
      done;
      !ok)

let placement_balanced =
  QCheck.Test.make ~name:"shard placement balanced: max/min <= 2"
    ~count:200
    QCheck.(pair (int_range 1 8) (int_range 1 2_000))
    (fun (shards, n) ->
      QCheck.assume (n >= shards);
      let bc = Array.make shards 0 and lc = Array.make shards 0 in
      for g = 0 to n - 1 do
        bc.(Shard.block_shard ~shards g) <- bc.(Shard.block_shard ~shards g) + 1
      done;
      for g = 1 to n do
        lc.(Shard.list_shard ~shards g) <- lc.(Shard.list_shard ~shards g) + 1
      done;
      let spread c =
        let mx = Array.fold_left max 0 c
        and mn = Array.fold_left min max_int c in
        mn > 0 && mx <= 2 * mn
      in
      spread bc && spread lc)

(* The 2PC protocol as a pure state machine: a cross-shard ARU spanning
   P participants commits as [Shard] emits it — one Prepare seal per
   non-coordinator participant in ascending order, then the single
   Decide seal on the coordinator (the commit point), then lazy Decide
   records.  Recovery resolves each participant from its durable
   prefix: own Decide ⇒ committed; dangling Prepare ⇒ the union
   decision oracle over every shard's log, presumed abort when absent;
   nothing durable ⇒ no effects.  The property: at EVERY crash cut of
   that event order the resolved outcome is all-or-nothing — no cut
   exists where one participant applies the ARU and another drops
   it. *)
let two_pc_atomic =
  QCheck.Test.make
    ~name:"2PC resolution is all-or-nothing at every crash cut" ~count:500
    QCheck.(pair (int_range 2 6) (int_range 0 10_000))
    (fun (p, cut_seed) ->
      let parts = List.init p Fun.id in
      let coord = 0 (* Shard picks the lowest participant *) in
      let events =
        List.filter_map
          (fun s -> if s <> coord then Some (s, `Prepare) else None)
          parts
        @ [ (coord, `Decide) ]
        @ List.filter_map
            (fun s -> if s <> coord then Some (s, `Decide) else None)
            parts
      in
      let cut = cut_seed mod (List.length events + 1) in
      let durable = List.filteri (fun i _ -> i < cut) events in
      let oracle_commit = List.exists (fun (_, e) -> e = `Decide) durable in
      let applies s =
        let has e = List.mem (s, e) durable in
        if has `Decide then true
        else if has `Prepare then oracle_commit
        else false
      in
      let outcomes = List.map applies parts in
      (* all-or-nothing, and committed exactly when the coordinator's
         decision survived the cut *)
      (List.for_all Fun.id outcomes || List.for_all not outcomes)
      && List.for_all Fun.id outcomes = oracle_commit)

let () =
  Alcotest.run "lld_props"
    [
      ( "model",
        [
          QCheck_alcotest.to_alcotest model_equivalence;
          QCheck_alcotest.to_alcotest sequential_model;
          QCheck_alcotest.to_alcotest block_map_model;
        ] );
      ( "crash-fuzz",
        [
          QCheck_alcotest.to_alcotest atomicity_fuzz;
          QCheck_alcotest.to_alcotest accounting_fuzz;
        ] );
      ( "codecs",
        [
          QCheck_alcotest.to_alcotest entry_roundtrip;
          QCheck_alcotest.to_alcotest snapshot_roundtrip;
        ] );
      ( "robustness",
        [
          QCheck_alcotest.to_alcotest segment_parse_total;
          QCheck_alcotest.to_alcotest summary_decode_total;
          QCheck_alcotest.to_alcotest checkpoint_decode_total;
        ] );
      ( "sharding",
        [
          QCheck_alcotest.to_alcotest placement_total;
          QCheck_alcotest.to_alcotest placement_dense;
          QCheck_alcotest.to_alcotest placement_balanced;
          QCheck_alcotest.to_alcotest two_pc_atomic;
        ] );
      ( "cost-model",
        [ QCheck_alcotest.to_alcotest cost_independence ] );
    ]
