(* Segment-cleaner hot paths: per-segment live index, batched relocation
   I/O, and the Greedy / Cost_benefit victim-selection policies. *)

open Helpers
module Counters = Lld_core.Counters

let geom16 = Geometry.v ~num_segments:16 ()

(* Fill a list with [n] blocks, keep every [keep_mod]-th and delete the
   rest — the classic mostly-dead log the cleaner feeds on. *)
let fill_and_delete ?(n = 300) ?(keep_mod = 10) lld l =
  let keep = ref [] in
  List.iteri
    (fun i b ->
      Lld.write lld b (block_data i);
      if i mod keep_mod = 0 then keep := (b, i) :: !keep
      else Lld.delete_block lld b)
    (List.init n (fun _ -> append_block lld l));
  Lld.flush lld;
  List.rev !keep

let check_survivors lld keep =
  List.iter
    (fun (b, i) ->
      check_data (Printf.sprintf "survivor %d" i) (block_data i)
        (Lld.read lld b))
    keep

(* Both victim-selection policies must reclaim space and preserve every
   live block; relocation must issue at most one disk read per victim. *)
let test_policy_preserves policy () =
  let config =
    { Config.default with Config.auto_clean = false; clean_policy = policy }
  in
  let _, lld = fresh_lld ~config ~geom:geom16 () in
  let keep = fill_and_delete lld (new_list lld) in
  let free_before = Lld.free_segments lld in
  Lld.clean lld ~target_free:(free_before + 2);
  Alcotest.(check bool) "segments reclaimed" true
    (Lld.free_segments lld > free_before);
  check_survivors lld keep;
  let c = Lld.counters lld in
  Alcotest.(check bool) "victims picked" true (c.Counters.clean_picks > 0);
  Alcotest.(check bool) "candidates scanned" true
    (c.Counters.victim_scans >= c.Counters.clean_picks);
  Alcotest.(check bool) "at most one disk read per victim" true
    (c.Counters.clean_disk_reads <= c.Counters.segments_cleaned)

(* Sealing pushes a segment's blocks into the LRU, so relocating
   recently written survivors must be served from the cache, not disk. *)
let test_warm_cache_relocation () =
  let config = { Config.default with Config.auto_clean = false } in
  let _, lld = fresh_lld ~config ~geom:geom16 () in
  let keep = fill_and_delete lld (new_list lld) in
  Lld.clean lld ~target_free:(Lld.free_segments lld + 2);
  let c = Lld.counters lld in
  Alcotest.(check bool) "blocks were relocated" true
    (c.Counters.blocks_copied_clean > 0);
  Alcotest.(check bool) "relocation hit the cache" true
    (c.Counters.clean_cache_hits > 0);
  Alcotest.(check int) "everything small enough to stay cached: no reads"
    0 c.Counters.clean_disk_reads;
  check_survivors lld keep

(* With a cache far smaller than the partition the relocation data must
   come from disk — and still in at most one batched read per victim. *)
let test_cold_cache_batched_reads () =
  let config =
    { Config.default with Config.auto_clean = false; cache_blocks = 8 }
  in
  let _, lld = fresh_lld ~config ~geom:geom16 () in
  let keep = fill_and_delete lld (new_list lld) in
  Lld.clean lld ~target_free:(Lld.free_segments lld + 2);
  let c = Lld.counters lld in
  Alcotest.(check bool) "blocks were relocated" true
    (c.Counters.blocks_copied_clean > 0);
  Alcotest.(check bool) "relocation read from disk" true
    (c.Counters.clean_disk_reads > 0);
  Alcotest.(check bool) "at most one disk read per victim" true
    (c.Counters.clean_disk_reads <= c.Counters.segments_cleaned);
  Alcotest.(check bool) "reads are batched: fewer reads than copies" true
    (c.Counters.clean_disk_reads < c.Counters.blocks_copied_clean);
  check_survivors lld keep

(* Recovery rebuilds the live index from the block map; cleaning right
   after a crash must still relocate correctly. *)
let test_clean_after_recovery () =
  let config = { Config.default with Config.auto_clean = false } in
  let disk, lld = fresh_lld ~config ~geom:geom16 () in
  let keep = fill_and_delete lld (new_list lld) in
  Fault.schedule_crash (Disk.fault disk) (Fault.After_writes 0);
  (try Disk.write disk ~offset:0 (Bytes.make 1 'x') with Fault.Crashed -> ());
  let lld2, _ = Lld.recover ~config disk in
  let free_before = Lld.free_segments lld2 in
  Lld.clean lld2 ~target_free:(free_before + 2);
  Alcotest.(check bool) "segments reclaimed after recovery" true
    (Lld.free_segments lld2 > free_before);
  check_survivors lld2 keep;
  let c = Lld.counters lld2 in
  Alcotest.(check bool) "at most one disk read per victim" true
    (c.Counters.clean_disk_reads <= c.Counters.segments_cleaned)

(* ------------------------------------------------------------------ *)
(* Property: cost-benefit cleaning with concurrent ARUs in flight and a
   warm cache never changes what any read observes.                    *)

let clean_oracle =
  QCheck.Test.make
    ~name:"cost-benefit cleaning preserves the read oracle" ~count:25
    QCheck.(
      small_list
        (pair (small_list (pair (int_range 0 99) (int_range 0 999))) bool))
    (fun arus ->
      let config =
        {
          Config.default with
          Config.auto_clean = false;
          clean_policy = Config.Cost_benefit;
        }
      in
      let _, lld = fresh_lld ~config ~geom:geom16 () in
      let l = new_list lld in
      let blocks = Array.init 100 (fun _ -> append_block lld l) in
      let model = Array.make 100 0 in
      Array.iteri
        (fun i b ->
          Lld.write lld b (block_data i);
          model.(i) <- i)
        blocks;
      (* each generated group is one ARU: all-or-nothing on the model *)
      List.iter
        (fun (ops, commit) ->
          let aru = Lld.begin_aru lld in
          List.iter
            (fun (i, tag) -> Lld.write lld ~aru blocks.(i) (block_data tag))
            ops;
          if commit then begin
            Lld.end_aru lld aru;
            List.iter (fun (i, tag) -> model.(i) <- tag) ops
          end
          else Lld.abort_aru lld aru)
        arus;
      (* committed churn so sealed segments accumulate dead blocks *)
      for round = 1 to 3 do
        Array.iteri
          (fun i b ->
            let tag = 1000 + (37 * round) + i in
            Lld.write lld b (block_data tag);
            model.(i) <- tag)
          blocks
      done;
      Lld.flush lld;
      (* one ARU stays open across cleaning with an uncommitted write *)
      let open_aru = Lld.begin_aru lld in
      Lld.write lld ~aru:open_aru blocks.(0) (block_data 31337);
      Lld.clean lld ~target_free:(Lld.free_segments lld + 2);
      let c = Lld.counters lld in
      let batched =
        c.Counters.clean_disk_reads <= c.Counters.segments_cleaned
      in
      let shadow_ok =
        data_tag (Lld.read lld ~aru:open_aru blocks.(0))
        = data_tag (block_data 31337)
      in
      Lld.abort_aru lld open_aru;
      let model_ok =
        Array.for_all
          (fun i ->
            data_tag (Lld.read lld blocks.(i))
            = data_tag (block_data model.(i)))
          (Array.init 100 Fun.id)
      in
      batched && shadow_ok && model_ok)

let () =
  Alcotest.run "lld_clean"
    [
      ( "policies",
        [
          Alcotest.test_case "greedy preserves data" `Quick
            (test_policy_preserves Config.Greedy);
          Alcotest.test_case "cost-benefit preserves data" `Quick
            (test_policy_preserves Config.Cost_benefit);
        ] );
      ( "relocation",
        [
          Alcotest.test_case "warm cache: zero disk reads" `Quick
            test_warm_cache_relocation;
          Alcotest.test_case "cold cache: batched reads" `Quick
            test_cold_cache_batched_reads;
          Alcotest.test_case "clean after recovery" `Quick
            test_clean_after_recovery;
        ] );
      ("oracle", [ QCheck_alcotest.to_alcotest clean_oracle ]);
    ]
