(* Benchmark driver: reproduces every table and figure of the paper's
   evaluation (on the virtual clock, DESIGN.md §4), then runs Bechamel
   micro-benchmarks of the same code paths in real time.

   Environment:
     FULL=1      paper-sized workloads (10,000 files, 78.125 MB file,
                 500,000 ARUs) on the 400 MB partition
     SCALE=0.2   custom workload multiplier
     MICRO=0     skip the Bechamel section *)

module Geometry = Lld_disk.Geometry
module Config = Lld_core.Config
module Lld = Lld_core.Lld
module Summary = Lld_core.Summary
module Fs = Lld_minixfs.Fs
module Setup = Lld_workload.Setup
module Experiment = Lld_harness.Experiment
module Report = Lld_harness.Report

let scale_of_env () =
  match Sys.getenv_opt "FULL" with
  | Some "1" -> Experiment.full
  | Some _ | None -> (
    match Sys.getenv_opt "SCALE" with
    | None -> Experiment.quick
    | Some s -> (
      match float_of_string_opt s with
      | Some f when f > 0. ->
        {
          Experiment.full with
          Experiment.files = f;
          bytes = f;
          arus = f /. 5.;
        }
      | Some _ | None ->
        prerr_endline "SCALE must be a positive float; using quick scale";
        Experiment.quick))

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: real elapsed time of the key kernels,
   one per reproduced artifact.                                        *)

open Bechamel
open Toolkit

let bench_geom = Geometry.v ~num_segments:200 ()

(* F5 kernel: create+write+delete one small file (the meta-data path
   Figure 5 stresses), per variant. *)
let smallfile_test variant =
  let inst = Setup.make ~geom:bench_geom ~inode_count:4096 variant in
  let body = Bytes.make 1024 'x' in
  let i = ref 0 in
  Test.make
    ~name:(Printf.sprintf "f5/create+delete/%s" (Setup.variant_label variant))
    (Staged.stage (fun () ->
         incr i;
         let path = Printf.sprintf "/b%07d" !i in
         Fs.create inst.Setup.fs path;
         Fs.write_file inst.Setup.fs path ~off:0 body;
         Fs.unlink inst.Setup.fs path))

(* F6 kernel: one 64 KB overwrite (steady-state log write). *)
let largefile_test variant =
  let inst = Setup.make ~geom:bench_geom ~inode_count:1024 variant in
  let body = Bytes.make (64 * 1024) 'y' in
  Fs.create inst.Setup.fs "/big";
  Fs.write_file inst.Setup.fs "/big" ~off:0 body;
  Test.make
    ~name:(Printf.sprintf "f6/write64k/%s" (Setup.variant_label variant))
    (Staged.stage (fun () -> Fs.write_file inst.Setup.fs "/big" ~off:0 body))

(* L1 kernel: one Begin/End ARU pair. *)
let aru_test variant =
  let _, lld = Setup.make_raw ~geom:bench_geom variant in
  Test.make
    ~name:(Printf.sprintf "l1/begin-end-aru/%s" (Setup.variant_label variant))
    (Staged.stage (fun () ->
         let a = Lld.begin_aru lld in
         Lld.end_aru lld a))

(* Read kernels: cached vs shadow-versioned reads. *)
let read_test () =
  let _, lld = Setup.make_raw ~geom:bench_geom Setup.New in
  let list = Lld.new_list lld () in
  let b = Lld.new_block lld ~list ~pred:Summary.Head () in
  Lld.write lld b (Bytes.make 4096 'z');
  let aru = Lld.begin_aru lld in
  Lld.write lld ~aru b (Bytes.make 4096 'w');
  [
    Test.make ~name:"read/committed"
      (Staged.stage (fun () -> ignore (Lld.read lld b)));
    Test.make ~name:"read/shadow"
      (Staged.stage (fun () -> ignore (Lld.read lld ~aru b)));
  ]

let run_micro () =
  let tests =
    List.map smallfile_test Setup.all_variants
    @ List.map largefile_test [ Setup.Old; Setup.New ]
    @ List.map aru_test [ Setup.Old; Setup.New ]
    @ read_test ()
  in
  let grouped = Test.make_grouped ~name:"lld" tests in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name o ->
      match Analyze.OLS.estimates o with
      | Some (est :: _) -> rows := (name, est) :: !rows
      | Some [] | None -> ())
    results;
  let rows = List.sort compare !rows in
  Printf.printf
    "\nBechamel micro-benchmarks (real time on this machine, ns/op)\n";
  Printf.printf "%s\n" (String.make 62 '-');
  List.iter
    (fun (name, est) -> Printf.printf "%-48s %12.1f\n" name est)
    rows;
  rows

(* The machine-readable bench trajectory: virtual-clock tables plus the
   micro-kernel timings, one file per run (default BENCH_PR10.json,
   overridable with BENCH_JSON=path).  Since PR 3 the tables include the
   "observability" section (gauges and latency histograms from the
   traced runs); since PR 4 also the "backend" section (wall-clock vs
   virtual-clock for the same workload on mem vs file storage); since
   PR 6 also the "r1" section (restart cost vs log length at fixed
   dirty-set size — the O(dirty) recovery curve); since PR 7 also the
   "g1" section (group-commit throughput scaling with concurrent
   clients); since PR 9 also the "z1" section (zero-copy data path:
   copies per block write and the commit breakdown, bytes API vs
   view API); since PR 10 also the "s1" section (sharded LLD:
   log-bandwidth scaling over 1/2/4 shards, cross-shard 2PC barrier
   cost, and the single-shard bit-identity flag). *)
let emit_json ~tables ~micro =
  let path = Option.value ~default:"BENCH_PR10.json" (Sys.getenv_opt "BENCH_JSON") in
  let micro_json =
    Report.List
      (List.map
         (fun (name, ns) ->
           Report.Obj
             [ ("name", Report.String name); ("ns_per_op", Report.Float ns) ])
         micro)
  in
  let json =
    match tables with
    | Report.Obj fields -> Report.Obj (fields @ [ ("micro", micro_json) ])
    | other -> Report.Obj [ ("tables", other); ("micro", micro_json) ]
  in
  let oc = open_out path in
  output_string oc (Report.json_to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote %s\n" path

let () =
  let scale = scale_of_env () in
  let checks, tables = Experiment.run_all_json Format.std_formatter scale in
  let micro =
    match Sys.getenv_opt "MICRO" with
    | Some "0" -> []
    | Some _ | None -> run_micro ()
  in
  emit_json ~tables ~micro;
  let failed =
    List.filter (fun c -> not c.Experiment.ck_ok) checks
  in
  if failed <> [] then begin
    Printf.eprintf "\n%d reproduction check(s) failed:\n" (List.length failed);
    List.iter
      (fun c ->
        Printf.eprintf "  FAIL %s (%s)\n" c.Experiment.ck_name
          c.Experiment.ck_detail)
      failed;
    exit 1
  end
