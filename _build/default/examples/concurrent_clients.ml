(* Concurrent ARUs: two independent clients interleave operations on the
   same logical disk; each sees its own shadow state (visibility option
   3, paper §3.3), the n+2 version rule in action.

     dune exec examples/concurrent_clients.exe *)

module Geometry = Lld_disk.Geometry
module Disk = Lld_disk.Disk
module Clock = Lld_sim.Clock
module Types = Lld_core.Types
module Lld = Lld_core.Lld
module Summary = Lld_core.Summary

let block_of_string s =
  let b = Bytes.make 4096 '\000' in
  Bytes.blit_string s 0 b 0 (String.length s);
  b

let string_of_block b =
  match Bytes.index_opt b '\000' with
  | Some i -> Bytes.sub_string b 0 i
  | None -> Bytes.to_string b

let show lld ?aru label b =
  Printf.printf "  %-18s sees %S\n" label (string_of_block (Lld.read lld ?aru b))

let () =
  let clock = Clock.create () in
  let disk = Disk.create ~clock Geometry.small in
  let lld = Lld.create disk in

  let list = Lld.new_list lld () in
  let b = Lld.new_block lld ~list ~pred:Summary.Head () in
  Lld.write lld b (block_of_string "committed v0");

  (* two clients begin concurrent ARUs *)
  let alice = Lld.begin_aru lld in
  let bob = Lld.begin_aru lld in
  Printf.printf "three versions of block b%d now coexist (n + 2 = 4 max):\n"
    (Types.Block_id.to_int b);
  Lld.write lld ~aru:alice b (block_of_string "alice's shadow");
  Lld.write lld ~aru:bob b (block_of_string "bob's shadow");
  show lld ~aru:alice "alice" b;
  show lld ~aru:bob "bob" b;
  show lld "the simple stream" b;

  (* alice also extends the list privately *)
  let b2 = Lld.new_block lld ~aru:alice ~list ~pred:(Summary.After b) () in
  Lld.write lld ~aru:alice b2 (block_of_string "alice's new block");
  Printf.printf "list through alice: %d blocks; through bob: %d blocks\n"
    (List.length (Lld.list_blocks lld ~aru:alice list))
    (List.length (Lld.list_blocks lld ~aru:bob list));

  (* bob commits first, alice second; data versions keep their write
     stamps (paper 3.1: "the most recent version, as determined by the
     time associated with each operation"), so bob's later write wins
     even though alice commits last *)
  Lld.end_aru lld bob;
  Printf.printf "after bob's commit:\n";
  show lld "the simple stream" b;
  Lld.end_aru lld alice;
  Printf.printf "after alice's commit:\n";
  show lld "the simple stream" b;
  Printf.printf "merged list: %d blocks\n"
    (List.length (Lld.list_blocks lld list));

  (* an aborted ARU leaves only its (scavengeable) allocations behind *)
  let carol = Lld.begin_aru lld in
  let b3 = Lld.new_block lld ~aru:carol ~list ~pred:Summary.Head () in
  Lld.write lld ~aru:carol b (block_of_string "carol's attempt");
  Lld.abort_aru lld carol;
  Printf.printf "after carol's abort:\n";
  show lld "the simple stream" b;
  Printf.printf "  carol's block b%d allocated: %b; scavenged: %d\n"
    (Types.Block_id.to_int b3)
    (Lld.block_allocated lld b3)
    (Lld.scavenge lld)
