examples/two_disks.ml: Bytes List Lld_core Lld_disk Lld_jld Lld_minixfs Lld_sim Printf
