examples/concurrent_clients.ml: Bytes List Lld_core Lld_disk Lld_sim Printf String
