examples/bank_ledger.ml: Array Bytes Lld_core Lld_disk Lld_sim Lld_util Printf
