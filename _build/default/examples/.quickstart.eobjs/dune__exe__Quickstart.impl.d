examples/quickstart.ml: Bytes Format Lld_core Lld_disk Lld_sim Printf String
