examples/two_disks.mli:
