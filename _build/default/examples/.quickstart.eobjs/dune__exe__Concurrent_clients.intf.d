examples/concurrent_clients.mli:
