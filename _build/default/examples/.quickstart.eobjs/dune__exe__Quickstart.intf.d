examples/quickstart.mli:
