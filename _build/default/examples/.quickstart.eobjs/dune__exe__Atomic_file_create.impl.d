examples/atomic_file_create.ml: Format Lld_core Lld_disk Lld_minixfs Lld_sim Printf
