examples/atomic_file_create.mli:
