(* The paper's motivating scenario (§1, §5.1): file creation updates
   several pieces of meta-data — the inode, the directory content, the
   block list.  With one ARU per create, a crash can never leave a
   half-created file; without ARUs it can, and fsck has to clean up.

     dune exec examples/atomic_file_create.exe *)

module Geometry = Lld_disk.Geometry
module Fault = Lld_disk.Fault
module Disk = Lld_disk.Disk
module Clock = Lld_sim.Clock
module Config = Lld_core.Config
module Lld = Lld_core.Lld
module Fs = Lld_minixfs.Fs
module Fsck = Lld_minixfs.Fsck

(* small segments so the crash granularity is fine enough to land
   inside a create *)
let geom = Geometry.v ~segment_bytes:(32 * 1024) ~num_segments:256 ()

let run ~label ~lld_config ~fs_config ~crash_after =
  Printf.printf "=== %s ===\n" label;
  let clock = Clock.create () in
  let disk = Disk.create ~clock geom in
  let lld = Lld.create ~config:lld_config disk in
  let fs = Fs.mkfs ~config:fs_config ~inode_count:1024 lld in
  Fs.flush fs;
  Fault.schedule_crash (Disk.fault disk) (Fault.After_writes crash_after);
  (try
     for i = 0 to 199 do
       Fs.mkdir fs (Printf.sprintf "/d%03d" i);
       Fs.create fs (Printf.sprintf "/d%03d/file" i)
     done;
     Fs.flush fs
   with Fault.Crashed -> ());
  Printf.printf "crash after %d segment writes\n" crash_after;
  let lld, _ = Lld.recover ~config:lld_config disk in
  let fs = Fs.mount ~config:fs_config lld in
  let report = Fsck.run fs in
  Format.printf "fsck: %a@." Fsck.pp_report report;
  if not (Fsck.ok report) then begin
    ignore (Fsck.run ~repair:true fs);
    Format.printf "after repair: %a@." Fsck.pp_report (Fsck.run fs)
  end;
  Printf.printf "\n"

let () =
  (* the new prototype: every create is one ARU — consistent at every
     crash point, no fsck needed (try other crash points!) *)
  run ~label:"with ARUs (new LLD)" ~lld_config:Config.default
    ~fs_config:Fs.config_new ~crash_after:9;
  (* the old prototype: no bracketing — the same crash point splits a
     create and leaves the file system inconsistent *)
  run ~label:"without ARUs (old LLD)" ~lld_config:Config.old_lld
    ~fs_config:Fs.config_old ~crash_after:9
