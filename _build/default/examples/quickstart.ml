(* Quickstart: the raw Logical Disk interface with atomic recovery
   units.

     dune exec examples/quickstart.exe

   Creates a logical disk on a simulated partition, groups several
   operations in one ARU, crashes the machine at an inconvenient moment,
   and shows that recovery is all-or-nothing. *)

module Geometry = Lld_disk.Geometry
module Fault = Lld_disk.Fault
module Disk = Lld_disk.Disk
module Clock = Lld_sim.Clock
module Lld = Lld_core.Lld
module Summary = Lld_core.Summary
module Recovery = Lld_core.Recovery

let block_of_string s =
  let b = Bytes.make 4096 '\000' in
  Bytes.blit_string s 0 b 0 (String.length s);
  b

let string_of_block b =
  match Bytes.index_opt b '\000' with
  | Some i -> Bytes.sub_string b 0 i
  | None -> Bytes.to_string b

let () =
  (* a 16 MB simulated partition with 1996 disk mechanics *)
  let clock = Clock.create () in
  let disk = Disk.create ~clock Geometry.small in
  let lld = Lld.create disk in

  (* --- simple operations: each is atomic by itself ------------------ *)
  let list = Lld.new_list lld () in
  let b1 = Lld.new_block lld ~list ~pred:Summary.Head () in
  Lld.write lld b1 (block_of_string "hello from block 1");
  Lld.flush lld;
  Printf.printf "simple write:   %S\n" (string_of_block (Lld.read lld b1));

  (* --- an ARU groups several operations ----------------------------- *)
  let aru = Lld.begin_aru lld in
  Lld.write lld ~aru b1 (block_of_string "updated inside the ARU");
  let b2 = Lld.new_block lld ~aru ~list ~pred:(Summary.After b1) () in
  Lld.write lld ~aru b2 (block_of_string "a second block, same ARU");
  (* isolation: the simple stream still sees the old state (option 3) *)
  Printf.printf "before commit:  %S (simple view)\n"
    (string_of_block (Lld.read lld b1));
  Lld.end_aru lld aru;
  Lld.flush lld;
  Printf.printf "after commit:   %S + %S\n"
    (string_of_block (Lld.read lld b1))
    (string_of_block (Lld.read lld b2));

  (* --- crash in the middle of another ARU --------------------------- *)
  let aru = Lld.begin_aru lld in
  Lld.write lld ~aru b1 (block_of_string "doomed update 1");
  Lld.write lld ~aru b2 (block_of_string "doomed update 2");
  (* power fails before EndARU reaches the disk *)
  Fault.schedule_crash (Disk.fault disk) (Fault.After_writes 0);
  (try Disk.write disk ~offset:0 (Bytes.make 1 'x') with Fault.Crashed -> ());
  Printf.printf "power failure!\n";

  let lld, report = Lld.recover disk in
  Format.printf "recovery: %a@." Recovery.pp_report report;
  Printf.printf "after recovery: %S + %S (the doomed ARU left no trace)\n"
    (string_of_block (Lld.read lld b1))
    (string_of_block (Lld.read lld b2));
  Printf.printf "virtual time elapsed: %.3f s\n"
    (float_of_int (Clock.now_ns clock) /. 1e9)
