(* A transaction-style client on the raw LD interface (paper §3: ARUs
   efficiently support "transaction-based systems as direct disk system
   clients").

   A toy ledger stores one account balance per block.  A transfer
   debits one block and credits another — inside one ARU, so a crash
   can never lose or create money.  Durability (the D in ACID) stays
   with the client, exactly as the paper prescribes: a transfer is
   durable only after Flush.

     dune exec examples/bank_ledger.exe *)

module Geometry = Lld_disk.Geometry
module Fault = Lld_disk.Fault
module Disk = Lld_disk.Disk
module Clock = Lld_sim.Clock
module Types = Lld_core.Types
module Lld = Lld_core.Lld
module Summary = Lld_core.Summary
module Codec = Lld_util.Bytes_codec

type ledger = { lld : Lld.t; accounts : Types.Block_id.t array }

let balance_of_block b = Codec.get_u32 b 0

let block_of_balance v =
  let b = Bytes.make 4096 '\000' in
  Codec.set_u32 b 0 v;
  b

let create lld ~accounts ~opening_balance =
  let list = Lld.new_list lld () in
  let blocks =
    Array.init accounts (fun _ ->
        let b = Lld.new_block lld ~list ~pred:Summary.Head () in
        Lld.write lld b (block_of_balance opening_balance);
        b)
  in
  Lld.flush lld;
  { lld; accounts = blocks }

let balance t i = balance_of_block (Lld.read t.lld t.accounts.(i))

let total t =
  Array.fold_left (fun acc b -> acc + balance_of_block (Lld.read t.lld b)) 0
    t.accounts

(* Debit and credit atomically; the crash in the middle (injected by the
   caller via the fault plan) can never half-apply. *)
let transfer t ~from_ ~to_ ~amount =
  let aru = Lld.begin_aru t.lld in
  let read b = balance_of_block (Lld.read t.lld ~aru b) in
  let debit = read t.accounts.(from_) in
  if debit < amount then begin
    Lld.abort_aru t.lld aru;
    Error `Insufficient_funds
  end
  else begin
    Lld.write t.lld ~aru t.accounts.(from_) (block_of_balance (debit - amount));
    Lld.write t.lld ~aru
      t.accounts.(to_)
      (block_of_balance (read t.accounts.(to_) + amount));
    Lld.end_aru t.lld aru;
    Ok ()
  end

let () =
  let clock = Clock.create () in
  let disk = Disk.create ~clock Geometry.small in
  let lld = Lld.create disk in
  let bank = create lld ~accounts:8 ~opening_balance:1000 in
  Printf.printf "opening total: %d\n" (total bank);

  (* a burst of transfers, then a power failure mid-burst *)
  let ok = ref 0 in
  (try
     for i = 0 to 199 do
       (match
          transfer bank ~from_:(i mod 8) ~to_:((i + 3) mod 8)
            ~amount:((i mod 7) + 1)
        with
       | Ok () -> incr ok
       | Error `Insufficient_funds -> ());
       (* group commits reach the disk every 25 transfers *)
       if i mod 25 = 24 then Lld.flush lld;
       if i = 120 then
         Fault.schedule_crash (Disk.fault disk) (Fault.After_writes 0)
     done;
     Lld.flush lld
   with Fault.Crashed -> Printf.printf "power failed after %d transfers!\n" !ok);

  let lld, _report = Lld.recover disk in
  let bank = { bank with lld } in
  Printf.printf "recovered total: %d (money conserved: %b)\n" (total bank)
    (total bank = 8000);
  Array.iteri
    (fun i _ -> Printf.printf "  account %d: %d\n" i (balance bank i))
    bank.accounts
