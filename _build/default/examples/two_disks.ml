(* Two implementations of the Logical Disk, one client.

   The paper's §2: "LD implementations can be exchanged transparently,
   without changing applications" — here the same client function runs
   against the log-structured LLD and the journaling in-place JLD via a
   first-class module of the LD signature, and the same Minix file
   system (a functor over that signature) is mounted on both.

     dune exec examples/two_disks.exe *)

module Clock = Lld_sim.Clock
module Geometry = Lld_disk.Geometry
module Disk = Lld_disk.Disk
module Types = Lld_core.Types
module Summary = Lld_core.Summary

(* A client written once, against the signature. *)
module Client (Ld : Lld_core.Ld_intf.S) = struct
  let run lld =
    let list = Ld.new_list lld () in
    let b1 = Ld.new_block lld ~list ~pred:Summary.Head () in
    let data = Bytes.make 4096 '\000' in
    Bytes.blit_string "hello from the shared client" 0 data 0 28;
    Ld.write lld b1 data;
    (* a transactional update *)
    Ld.with_aru lld (fun aru ->
        let b2 = Ld.new_block lld ~aru ~list ~pred:(Summary.After b1) () in
        Ld.write lld ~aru b2 data;
        Ld.write lld ~aru b1 data);
    Ld.flush lld;
    Printf.printf "  %d blocks on the list, %d allocated, %.3f s virtual\n"
      (List.length (Ld.list_blocks lld list))
      (Ld.allocated_blocks lld)
      (float_of_int (Clock.now_ns (Ld.clock lld)) /. 1e9)
end

module Lld_client = Client (Lld_core.Lld)
module Jld_client = Client (Lld_jld.Jld)

(* The Minix file system on both, through the same functor. *)
module Fs_on_jld = Lld_minixfs.Fs_generic.Make (Lld_jld.Jld)

let () =
  Printf.printf "raw LD client on LLD (log-structured):\n";
  let clock = Clock.create () in
  let disk = Disk.create ~clock Geometry.small in
  Lld_client.run (Lld_core.Lld.create disk);

  Printf.printf "raw LD client on JLD (in-place + journal):\n";
  let clock = Clock.create () in
  let disk = Disk.create ~clock Geometry.small in
  Jld_client.run (Lld_jld.Jld.create disk);

  (* the same file-system code, two different disks underneath *)
  Printf.printf "Minix FS on LLD:  ";
  let clock = Clock.create () in
  let disk = Disk.create ~clock Geometry.small in
  let fs = Lld_minixfs.Fs.mkfs (Lld_core.Lld.create disk) in
  Lld_minixfs.Fs.mkdir fs "/d";
  Lld_minixfs.Fs.create fs "/d/x";
  Lld_minixfs.Fs.write_file fs "/d/x" ~off:0 (Bytes.of_string "on lld");
  Printf.printf "read back %S\n"
    (Bytes.to_string (Lld_minixfs.Fs.read_file fs "/d/x" ~off:0 ~len:6));

  Printf.printf "Minix FS on JLD:  ";
  let clock = Clock.create () in
  let disk = Disk.create ~clock Geometry.small in
  let fs = Fs_on_jld.Fs_impl.mkfs (Lld_jld.Jld.create disk) in
  Fs_on_jld.Fs_impl.mkdir fs "/d";
  Fs_on_jld.Fs_impl.create fs "/d/x";
  Fs_on_jld.Fs_impl.write_file fs "/d/x" ~off:0 (Bytes.of_string "on jld");
  Printf.printf "read back %S\n"
    (Bytes.to_string (Fs_on_jld.Fs_impl.read_file fs "/d/x" ~off:0 ~len:6))
