lib/minixfs/superblock.ml: Bytes Layout Lld_core Lld_util
