lib/minixfs/fs.mli: Dirent Inode Layout Lld_core Minix_make Superblock
