lib/minixfs/fs.ml: Minix_make
