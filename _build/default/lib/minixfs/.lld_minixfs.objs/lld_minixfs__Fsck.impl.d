lib/minixfs/fsck.ml: Minix_make
