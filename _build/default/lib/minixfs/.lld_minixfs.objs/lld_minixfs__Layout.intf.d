lib/minixfs/layout.mli:
