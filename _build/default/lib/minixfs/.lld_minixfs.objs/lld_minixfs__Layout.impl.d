lib/minixfs/layout.ml: Printf
