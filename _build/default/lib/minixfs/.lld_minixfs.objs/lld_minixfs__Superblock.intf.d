lib/minixfs/superblock.mli: Lld_core
