lib/minixfs/fsck.mli: Format Fs
