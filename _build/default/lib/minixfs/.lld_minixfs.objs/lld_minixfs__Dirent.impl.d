lib/minixfs/dirent.ml: Bytes Layout Lld_util String
