lib/minixfs/inode.mli: Layout Lld_core
