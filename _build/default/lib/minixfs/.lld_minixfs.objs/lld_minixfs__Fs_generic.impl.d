lib/minixfs/fs_generic.ml: Array Bytes Dirent Dump Fmt Format Hashtbl Inode Layout Lazy List Lld_core Lld_sim Lld_util Option Printf String Superblock
