lib/minixfs/inode.ml: Layout Lld_core Lld_util
