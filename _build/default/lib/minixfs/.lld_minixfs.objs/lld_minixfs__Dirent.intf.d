lib/minixfs/dirent.mli:
