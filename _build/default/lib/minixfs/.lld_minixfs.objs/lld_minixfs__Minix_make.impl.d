lib/minixfs/minix_make.ml: Fs_generic Lld_core
