include Minix_make.Applied.Fsck_impl
