(** File-system consistency checker.

    The paper's point (§5.1) is that with ARUs {e no} fsck is needed:
    after recovery the file system is consistent by construction.  This
    checker exists to {e demonstrate} that — tests and examples run it
    after crashes to show a clean report under [Per_operation] and
    inconsistencies under [No_arus] — and to repair the latter, playing
    the role of the UNIX fsck the paper makes obsolete. *)

type problem =
  | Dangling_dirent of { dir : int; name : string; ino : int }
      (** directory entry naming a free or out-of-range inode *)
  | Inode_without_list of { ino : int }
      (** allocated inode whose block list does not exist in LD *)
  | Shared_list of { list : int; inos : int list }
      (** two inodes claim the same block list *)
  | Size_mismatch of { ino : int; size : int; blocks : int }
      (** the inode's size needs more blocks than its list holds (data
          loss); extra trailing blocks are benign — plain writes are not
          bracketed in ARUs, see the paper §5.1 *)
  | Unreachable_inode of { ino : int }
      (** allocated inode not referenced by any directory *)
  | Bad_nlinks of { ino : int; nlinks : int; refs : int }
      (** a regular file's link count disagrees with the number of
          directory entries referencing it *)
  | Orphan_list of { list : int }
      (** LD list referenced by no file-system object (e.g. created by
          an ARU that never committed) *)
  | Orphan_block of { block : int }
      (** LD block allocated but on no list (aborted-ARU allocations) *)

val pp_problem : Format.formatter -> problem -> unit

type report = {
  problems : problem list;
  checked_inodes : int;
  checked_lists : int;
  repaired : int;  (** 0 unless [~repair:true] *)
}

val ok : report -> bool

val pp_report : Format.formatter -> report -> unit

val run : ?repair:bool -> Fs.t -> report
(** Walk the whole file system and the LD name-spaces.  With
    [~repair:true], dangling dirents are cleared, unreachable inodes
    freed, orphan lists deleted and orphan blocks scavenged. *)
