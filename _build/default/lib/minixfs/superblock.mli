(** The superblock: the file system's root of trust.

    Stored in the first block of LD list 1 (the first list [mkfs]
    creates — LD list allocation is deterministic, so list 1 is the
    file system's well-known entry point). *)

type t = {
  inode_count : int;
  inode_list : Lld_core.Types.List_id.t;  (** list holding the inode table *)
  root_ino : int;
}

val encode : t -> bytes
(** One full block. *)

val decode : bytes -> t
(** Raises [Lld_core.Errors.Corrupt] on a bad magic or malformed
    contents. *)
