(* The single shared application of the file-system functor to the
   log-structured Logical Disk.  Fs and Fsck both include from here so
   their types and exceptions are the same modules. *)

module Applied = Fs_generic.Make (Lld_core.Lld)
