(** Inode codec: 32-byte records packed into the inode-table blocks.

    An inode names the LD list holding the file's data blocks; there are
    no direct/indirect block pointers (disk management belongs to LD,
    paper §2). *)

type t = {
  kind : Layout.kind;
  nlinks : int;
  size : int;  (** bytes *)
  list : Lld_core.Types.List_id.t option;  (** [None] iff never assigned *)
}

val free : t

val read : bytes -> index:int -> t
(** [read block ~index] decodes slot [index] of an inode-table block. *)

val write : bytes -> index:int -> t -> unit
(** Patch slot [index] in place. *)

val block_of_ino : int -> int
(** Which inode-table block holds this inode. *)

val index_of_ino : int -> int
(** Slot within that block. *)
