include Minix_make.Applied.Fs_impl
