module Codec = Lld_util.Bytes_codec

type t = { ino : int; name : string }

let valid_name name =
  String.length name > 0
  && String.length name <= Layout.name_max
  && not (String.exists (fun c -> c = '/' || c = '\000') name)

let read block ~off =
  match Codec.get_u16 block off with
  | 0 -> None
  | ino ->
    let raw = Bytes.sub_string block (off + 2) Layout.name_max in
    let name =
      match String.index_opt raw '\000' with
      | Some i -> String.sub raw 0 i
      | None -> raw
    in
    Some { ino; name }

let write block ~off t =
  if not (valid_name t.name) then invalid_arg "Dirent.write: invalid name";
  if t.ino <= 0 || t.ino > 0xffff then invalid_arg "Dirent.write: invalid ino";
  Codec.set_u16 block off t.ino;
  let padded = Bytes.make Layout.name_max '\000' in
  Bytes.blit_string t.name 0 padded 0 (String.length t.name);
  Bytes.blit padded 0 block (off + 2) Layout.name_max

let clear block ~off =
  Bytes.fill block off Layout.dirent_bytes '\000'
