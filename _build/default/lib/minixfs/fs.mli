(** The Minix-like file system on top of the Logical Disk (MinixLLD,
    paper §5.1).

    Disk management lives entirely in LD; the file system only organises
    files: an inode table, directories stored as files, and one LD list
    per file.  File and directory creation and deletion are bracketed in
    one ARU each when the {!aru_policy} asks for it — after a crash
    either all of a file's meta-data exists or none of it does, and no
    fsck is needed (paper §5.1).

    Paths are absolute, ["/"]-separated, e.g. ["/dir/file0"].

    This module is the functor {!Fs_generic.Make} applied to the
    log-structured {!Lld_core.Lld}; the equation below is what lets
    {!Fsck} (the sibling application) share the type. *)

type t = Minix_make.Applied.Fs_impl.t

(** Whether mutating meta-data operations run inside ARUs.  [No_arus]
    reproduces the paper's "old" configuration (the unmodified Minix on
    the original LLD). *)
type aru_policy = No_arus | Per_operation

(** How [unlink] deallocates file blocks (paper §5.3):
    [Blocks_first] deallocates every block individually before deleting
    the list — each deallocation pays a predecessor search;
    [List_direct] deletes the list in one LD call (the improved policy
    of the "new, delete" variant). *)
type delete_policy = Blocks_first | List_direct

type config = { aru_policy : aru_policy; delete_policy : delete_policy }

val config_old : config
(** [No_arus], [Blocks_first] — paper Table 1 "old". *)

val config_new : config
(** [Per_operation], [Blocks_first] — paper Table 1 "new". *)

val config_new_delete : config
(** [Per_operation], [List_direct] — paper Table 1 "new, delete". *)

type stat = { ino : int; kind : Layout.kind; size : int; nlinks : int }

exception Not_found_path of string
exception Already_exists of string
exception Not_a_directory of string
exception Is_a_directory of string
exception Directory_not_empty of string
exception Invalid_name of string
exception Out_of_inodes

(** {1 Formatting and mounting} *)

val mkfs : ?config:config -> ?inode_count:int -> Lld_core.Lld.t -> t
(** Build a fresh file system on a freshly formatted logical disk.
    [inode_count] defaults to a capacity-scaled value (at most 65536,
    the dirent limit). *)

val mount : ?config:config -> Lld_core.Lld.t -> t
(** Mount an existing file system (e.g. after [Lld.recover]).  Raises
    [Lld_core.Errors.Corrupt] if no valid superblock is found. *)

(** {1 Operations} *)

val create : t -> string -> unit
(** Create an empty regular file (inode + data list + directory entry,
    atomically under [Per_operation]). *)

val mkdir : t -> string -> unit
val unlink : t -> string -> unit
(** Remove a regular file, deallocating its blocks per the configured
    {!delete_policy}. *)

val rmdir : t -> string -> unit
(** Raises [Directory_not_empty]. *)

val rename : t -> string -> string -> unit
(** Atomically move (and, for regular files, replace) — directory-entry
    removal, replacement deallocation, and insertion are one ARU under
    [Per_operation].  Raises [Is_a_directory] when the destination is an
    existing directory, [Invalid_name] when a directory would be moved
    into its own subtree. *)

val link : t -> string -> string -> unit
(** [link t existing fresh] adds a hard link (regular files only:
    raises [Is_a_directory] on directories).  The directory entry and
    the link-count update are one ARU. *)

val truncate : t -> string -> size:int -> unit
(** Shrink (deallocating trailing blocks) or extend (the extension reads
    as zeroes) a regular file, atomically under [Per_operation]. *)

val write_file : t -> string -> off:int -> bytes -> unit
(** Write (extending the file as needed; gaps read as zeroes). *)

val read_file : t -> string -> off:int -> len:int -> bytes
(** Reads at most [len] bytes (short at end-of-file). *)

val readdir : t -> string -> string list
(** Entry names, sorted. *)

val stat : t -> string -> stat
val exists : t -> string -> bool

val flush : t -> unit
(** LD Flush: make everything committed persistent. *)

val lld : t -> Lld_core.Lld.t

(** {1 Interfaces for consistency checking (see {!Fsck})} *)

val superblock : t -> Superblock.t

val iter_inodes : t -> (int -> Inode.t -> unit) -> unit
(** Every inode slot (including free ones), ascending by number,
    starting at {!Layout.root_ino}. *)

val read_inode : t -> int -> Inode.t
val dir_entries : t -> int -> Dirent.t list
(** Raw entries of a directory given its inode number. *)

(** {1 Repair hooks (used by {!Fsck} with [~repair:true])} *)

val repair_remove_dirent : t -> dir:int -> string -> unit
(** Clear a directory entry by name. *)

val repair_free_inode : t -> int -> unit
(** Free an inode, deleting its block list if it still exists.  No-op on
    an already-free inode. *)

val repair_set_nlinks : t -> int -> int -> unit
(** [repair_set_nlinks t ino n] rewrites the link count. *)
