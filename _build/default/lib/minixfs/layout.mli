(** On-disk layout constants of the Minix-like file system.

    The structure follows the Minix file system the paper runs on top of
    LLD (§5.1), adapted to the Logical Disk: there are no zone bitmaps
    or block pointers — every file's data blocks live on one LD list
    (paper: "MinixLLD uses one list per file"), and the inode records
    the list identifier. *)

val block_bytes : int
(** 4096, matching the logical disk. *)

val inode_bytes : int
(** 32 bytes per inode. *)

val inodes_per_block : int

val name_max : int
(** 14 characters, as in classic Minix. *)

val dirent_bytes : int
(** 16: a u16 inode number plus the name. *)

val dirents_per_block : int

val superblock_magic : int

val root_ino : int
(** Inode 1; inode 0 is reserved as "no entry". *)

(** File kinds stored in the inode mode field. *)
type kind = Free | Regular | Directory

val kind_to_int : kind -> int
val kind_of_int : int -> kind
(** Raises [Invalid_argument] on an unknown mode. *)
