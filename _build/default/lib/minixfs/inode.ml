module Codec = Lld_util.Bytes_codec

type t = {
  kind : Layout.kind;
  nlinks : int;
  size : int;
  list : Lld_core.Types.List_id.t option;
}

let free = { kind = Layout.Free; nlinks = 0; size = 0; list = None }

let read block ~index =
  let off = index * Layout.inode_bytes in
  let kind = Layout.kind_of_int (Codec.get_u16 block off) in
  let nlinks = Codec.get_u16 block (off + 2) in
  let size = Codec.get_u32 block (off + 4) in
  let list =
    match Codec.get_u32 block (off + 8) with
    | 0 -> None
    | l -> Some (Lld_core.Types.List_id.of_int l)
  in
  { kind; nlinks; size; list }

let write block ~index t =
  let off = index * Layout.inode_bytes in
  Codec.set_u16 block off (Layout.kind_to_int t.kind);
  Codec.set_u16 block (off + 2) t.nlinks;
  Codec.set_u32 block (off + 4) t.size;
  Codec.set_u32 block (off + 8)
    (match t.list with
    | None -> 0
    | Some l -> Lld_core.Types.List_id.to_int l)

let block_of_ino ino = ino / Layout.inodes_per_block
let index_of_ino ino = ino mod Layout.inodes_per_block
