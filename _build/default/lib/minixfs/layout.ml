let block_bytes = 4096
let inode_bytes = 32
let inodes_per_block = block_bytes / inode_bytes
let name_max = 14
let dirent_bytes = 16
let dirents_per_block = block_bytes / dirent_bytes
let superblock_magic = 0x4d4c4644 (* "MLFD" *)
let root_ino = 1

type kind = Free | Regular | Directory

let kind_to_int = function Free -> 0 | Regular -> 1 | Directory -> 2

let kind_of_int = function
  | 0 -> Free
  | 1 -> Regular
  | 2 -> Directory
  | n -> invalid_arg (Printf.sprintf "Layout.kind_of_int: %d" n)
