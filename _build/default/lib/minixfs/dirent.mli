(** Directory-entry codec: 16-byte Minix-style entries (u16 inode number
    + 14-character name) packed into directory file data. *)

type t = { ino : int; name : string }

val valid_name : string -> bool
(** Non-empty, at most {!Layout.name_max} characters, no ['/'] and no
    NUL. *)

val read : bytes -> off:int -> t option
(** [None] for an empty slot (inode number 0). *)

val write : bytes -> off:int -> t -> unit
(** Raises [Invalid_argument] on an invalid name. *)

val clear : bytes -> off:int -> unit
