module Codec = Lld_util.Bytes_codec

type t = {
  inode_count : int;
  inode_list : Lld_core.Types.List_id.t;
  root_ino : int;
}

let encode t =
  let b = Bytes.make Layout.block_bytes '\000' in
  Codec.set_u32 b 0 Layout.superblock_magic;
  Codec.set_u32 b 4 1 (* version *);
  Codec.set_u32 b 8 t.inode_count;
  Codec.set_u32 b 12 (Lld_core.Types.List_id.to_int t.inode_list);
  Codec.set_u32 b 16 t.root_ino;
  Codec.set_u32 b 20 Layout.block_bytes;
  b

let decode b =
  if Bytes.length b <> Layout.block_bytes then
    raise (Lld_core.Errors.Corrupt "superblock: wrong block size");
  if Codec.get_u32 b 0 <> Layout.superblock_magic then
    raise (Lld_core.Errors.Corrupt "superblock: bad magic");
  if Codec.get_u32 b 20 <> Layout.block_bytes then
    raise (Lld_core.Errors.Corrupt "superblock: block size mismatch");
  {
    inode_count = Codec.get_u32 b 8;
    inode_list = Lld_core.Types.List_id.of_int (Codec.get_u32 b 12);
    root_ino = Codec.get_u32 b 16;
  }
