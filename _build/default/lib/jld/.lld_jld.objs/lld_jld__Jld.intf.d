lib/jld/jld.mli: Lld_core Lld_disk Lld_sim
