lib/jld/jld.ml: Bytes Fun Hashtbl Int Int64 List Lld_core Lld_disk Lld_sim Lld_util Option
