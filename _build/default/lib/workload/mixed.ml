module Clock = Lld_sim.Clock
module Rng = Lld_sim.Rng
module Fs = Lld_minixfs.Fs

type params = { dirs : int; files_per_dir : int; file_bytes : int; seed : int }

let default = { dirs = 20; files_per_dir = 25; file_bytes = 4096; seed = 11 }

type phase = { label : string; ops : int; elapsed_ns : int; ops_per_sec : float }
type result = { params : params; phases : phase list }

let dir_path d = Printf.sprintf "/src%03d" d
let file_path d f = Printf.sprintf "/src%03d/f%03d" d f

let measure inst label f =
  let clock = inst.Setup.clock in
  let t0 = Clock.now_ns clock in
  let ops = f () in
  let elapsed_ns = Clock.now_ns clock - t0 in
  {
    label;
    ops;
    elapsed_ns;
    ops_per_sec =
      float_of_int ops /. (float_of_int (max 1 elapsed_ns) /. 1e9);
  }

let run inst (p : params) =
  let fs = inst.Setup.fs in
  let rng = Rng.create ~seed:p.seed in
  let body =
    Bytes.init p.file_bytes (fun i -> Char.chr ((i * 7) land 0xff))
  in
  let mkdir =
    measure inst "mkdir" (fun () ->
        for d = 0 to p.dirs - 1 do
          Fs.mkdir fs (dir_path d)
        done;
        p.dirs)
  in
  let copy =
    measure inst "copy" (fun () ->
        for d = 0 to p.dirs - 1 do
          for f = 0 to p.files_per_dir - 1 do
            Fs.create fs (file_path d f);
            Fs.write_file fs (file_path d f) ~off:0 body
          done
        done;
        Fs.flush fs;
        p.dirs * p.files_per_dir)
  in
  let stat =
    measure inst "stat" (fun () ->
        let n = ref 0 in
        for d = 0 to p.dirs - 1 do
          List.iter
            (fun name ->
              ignore (Fs.stat fs (dir_path d ^ "/" ^ name));
              incr n)
            (Fs.readdir fs (dir_path d))
        done;
        !n)
  in
  let read =
    measure inst "read" (fun () ->
        for d = 0 to p.dirs - 1 do
          for f = 0 to p.files_per_dir - 1 do
            ignore (Fs.read_file fs (file_path d f) ~off:0 ~len:p.file_bytes)
          done
        done;
        p.dirs * p.files_per_dir)
  in
  let compile =
    measure inst "compile" (fun () ->
        for d = 0 to p.dirs - 1 do
          (* read a random half of the directory's sources, then emit
             one object file *)
          for _ = 1 to p.files_per_dir / 2 do
            let f = Rng.int rng p.files_per_dir in
            ignore (Fs.read_file fs (file_path d f) ~off:0 ~len:p.file_bytes)
          done;
          let obj = dir_path d ^ "/out.o" in
          Fs.create fs obj;
          Fs.write_file fs obj ~off:0 body
        done;
        Fs.flush fs;
        p.dirs)
  in
  { params = p; phases = [ mkdir; copy; stat; read; compile ] }
