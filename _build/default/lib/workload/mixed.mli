(** An Andrew-style mixed workload: the original Logical Disk paper
    complements the micro-benchmarks with a general file-system
    benchmark; this is its equivalent here.

    Five phases over a source tree of [dirs] directories with [files]
    files each:

    - {b mkdir}: create the directory tree;
    - {b copy}: create and write every file;
    - {b stat}: walk the tree, stat every file;
    - {b read}: read every file in full;
    - {b compile}: read every source file and write one "object" file
      per directory (mixed read/write with creates).

    Each phase reports operations/second on the virtual clock. *)

type params = {
  dirs : int;
  files_per_dir : int;
  file_bytes : int;
  seed : int;
}

val default : params
(** 20 directories × 25 files of 4 KB. *)

type phase = { label : string; ops : int; elapsed_ns : int; ops_per_sec : float }

type result = { params : params; phases : phase list }

val run : Setup.instance -> params -> result
