module Clock = Lld_sim.Clock
module Lld = Lld_core.Lld
module Counters = Lld_core.Counters

type params = { count : int }

let paper = { count = 500_000 }

type result = {
  count : int;
  elapsed_ns : int;
  latency_us : float;
  segments_written : int;
}

let run lld (p : params) =
  let clock = Lld.clock lld in
  let t0 = Clock.now_ns clock in
  let segs0 = (Lld.counters lld).Counters.segments_written in
  for _ = 1 to p.count do
    let a = Lld.begin_aru lld in
    Lld.end_aru lld a
  done;
  Lld.flush lld;
  let elapsed_ns = Clock.now_ns clock - t0 in
  {
    count = p.count;
    elapsed_ns;
    latency_us = float_of_int elapsed_ns /. 1e3 /. float_of_int p.count;
    segments_written = (Lld.counters lld).Counters.segments_written - segs0;
  }
