module Clock = Lld_sim.Clock
module Stats = Lld_sim.Stats
module Lld = Lld_core.Lld
module Counters = Lld_core.Counters
module Fs = Lld_minixfs.Fs

type params = { file_count : int; file_bytes : int; dirs : int }

let paper_1k = { file_count = 10_000; file_bytes = 1_024; dirs = 1 }
let paper_10k = { file_count = 1_000; file_bytes = 10_240; dirs = 1 }

let scaled p f =
  { p with file_count = max 1 (int_of_float (float_of_int p.file_count *. f)) }

type phase = {
  files : int;
  elapsed_ns : int;
  files_per_sec : float;
  pred_search_hops : int;
}

type result = {
  params : params;
  create_write : phase;
  read : phase;
  delete : phase;
}

let path p i =
  if p.dirs <= 1 then Printf.sprintf "/f%06d" i
  else Printf.sprintf "/d%03d/f%06d" (i mod p.dirs) i

let measure_phase inst f =
  let clock = inst.Setup.clock in
  let counters = Lld.counters inst.Setup.lld in
  let t0 = Clock.now_ns clock in
  let hops0 = counters.Counters.pred_search_hops in
  let files = f () in
  let elapsed_ns = Clock.now_ns clock - t0 in
  {
    files;
    elapsed_ns;
    files_per_sec = Stats.throughput ~work:(float_of_int files) ~elapsed_ns;
    pred_search_hops = counters.Counters.pred_search_hops - hops0;
  }

let run inst p =
  let fs = inst.Setup.fs in
  if p.dirs > 1 then
    for d = 0 to p.dirs - 1 do
      Fs.mkdir fs (Printf.sprintf "/d%03d" d)
    done;
  let body = Bytes.init p.file_bytes (fun i -> Char.chr (i land 0xff)) in
  let create_write =
    measure_phase inst (fun () ->
        for i = 0 to p.file_count - 1 do
          let path = path p i in
          Fs.create fs path;
          Fs.write_file fs path ~off:0 body
        done;
        Fs.flush fs;
        p.file_count)
  in
  let read =
    measure_phase inst (fun () ->
        for i = 0 to p.file_count - 1 do
          let got = Fs.read_file fs (path p i) ~off:0 ~len:p.file_bytes in
          assert (Bytes.length got = p.file_bytes)
        done;
        p.file_count)
  in
  let delete =
    measure_phase inst (fun () ->
        for i = 0 to p.file_count - 1 do
          Fs.unlink fs (path p i)
        done;
        Fs.flush fs;
        p.file_count)
  in
  { params = p; create_write; read; delete }
