(** Systematic crash-consistency torture.

    Runs a randomized file-system workload (creates, writes, renames,
    links, deletes across a directory tree) under each of a range of
    crash points, recovers, mounts, and checks the file system with
    {!Lld_minixfs.Fsck} — the exhaustive version of the paper's §5.1
    claim.  Small segments make the crash granularity fine enough to
    land inside individual operations.

    Used by the property tests and by `lld_cli torture`. *)

type params = {
  seed : int;
  operations : int;  (** workload length *)
  crash_points : int;  (** crash after 0..crash_points-1 segment writes *)
}

val default : params

type outcome = {
  crash_after : int;
  consistent : bool;
  problems : Lld_minixfs.Fsck.problem list;
  files_surviving : int;
}

type result = {
  params : params;
  outcomes : outcome list;
  all_consistent : bool;
}

val workload :
  ?trace:(string -> unit) ->
  Lld_sim.Rng.t ->
  Lld_minixfs.Fs.t ->
  int ->
  unit
(** The raw workload, exposed for debugging and tests. *)

val run :
  ?with_arus:bool (** default true; false = the old configuration *) ->
  ?trace:(string -> unit) (** called with a description of each operation *) ->
  params ->
  result
