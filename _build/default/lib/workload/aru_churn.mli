(** The ARU-latency experiment of paper §5.3: begin and end an empty
    ARU [count] times (paper: 500,000), measuring the latency per ARU
    and the number of segments written with the commit records (paper:
    78.47 µs and 24 segments). *)

type params = { count : int }

val paper : params

type result = {
  count : int;
  elapsed_ns : int;
  latency_us : float;  (** per Begin/End pair *)
  segments_written : int;
}

val run : Lld_core.Lld.t -> params -> result
(** The logical disk's clock is assumed to be at the epoch (use
    {!Setup.make_raw}). *)
