module Clock = Lld_sim.Clock
module Rng = Lld_sim.Rng
module Fs = Lld_minixfs.Fs

type params = { file_bytes : int; io_bytes : int; seed : int }

let paper =
  { file_bytes = 78_125 * 1024 (* 78.125 MB *); io_bytes = 64 * 1024; seed = 1 }

let scaled p f =
  let block = 4096 in
  let bytes = int_of_float (float_of_int p.file_bytes *. f) in
  { p with file_bytes = max block (bytes / block * block) }

type phase = {
  label : string;
  bytes : int;
  elapsed_ns : int;
  mb_per_sec : float;
}

type result = {
  params : params;
  write1 : phase;
  read1 : phase;
  write2 : phase;
  read2 : phase;
  read3 : phase;
}

let phases r = [ r.write1; r.read1; r.write2; r.read2; r.read3 ]

let file = "/bigfile"
let block = 4096

let measure inst label ~bytes f =
  let clock = inst.Setup.clock in
  let t0 = Clock.now_ns clock in
  f ();
  let elapsed_ns = Clock.now_ns clock - t0 in
  {
    label;
    bytes;
    elapsed_ns;
    mb_per_sec =
      float_of_int bytes /. (1024. *. 1024.)
      /. (float_of_int elapsed_ns /. 1e9);
  }

let shuffled_blocks p ~salt =
  let rng = Rng.create ~seed:(p.seed + salt) in
  let n = p.file_bytes / block in
  let order = Array.init n Fun.id in
  Rng.shuffle rng order;
  order

let run inst p =
  let fs = inst.Setup.fs in
  let body = Bytes.init p.io_bytes (fun i -> Char.chr ((i * 31) land 0xff)) in
  let block_body = Bytes.sub body 0 block in
  Fs.create fs file;
  let write1 =
    measure inst "write1" ~bytes:p.file_bytes (fun () ->
        let off = ref 0 in
        while !off < p.file_bytes do
          let n = min p.io_bytes (p.file_bytes - !off) in
          Fs.write_file fs file ~off:!off (Bytes.sub body 0 n);
          off := !off + n
        done;
        Fs.flush fs)
  in
  let read1 =
    measure inst "read1" ~bytes:p.file_bytes (fun () ->
        let off = ref 0 in
        while !off < p.file_bytes do
          let n = min p.io_bytes (p.file_bytes - !off) in
          ignore (Fs.read_file fs file ~off:!off ~len:n);
          off := !off + n
        done)
  in
  let write2 =
    measure inst "write2" ~bytes:p.file_bytes (fun () ->
        Array.iter
          (fun bi -> Fs.write_file fs file ~off:(bi * block) block_body)
          (shuffled_blocks p ~salt:17);
        Fs.flush fs)
  in
  let read2 =
    measure inst "read2" ~bytes:p.file_bytes (fun () ->
        Array.iter
          (fun bi -> ignore (Fs.read_file fs file ~off:(bi * block) ~len:block))
          (shuffled_blocks p ~salt:42))
  in
  let read3 =
    measure inst "read3" ~bytes:p.file_bytes (fun () ->
        let off = ref 0 in
        while !off < p.file_bytes do
          let n = min p.io_bytes (p.file_bytes - !off) in
          ignore (Fs.read_file fs file ~off:!off ~len:n);
          off := !off + n
        done)
  in
  { params = p; write1; read1; write2; read2; read3 }
