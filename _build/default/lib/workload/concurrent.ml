module Clock = Lld_sim.Clock
module Rng = Lld_sim.Rng
module Types = Lld_core.Types
module Lld = Lld_core.Lld
module Counters = Lld_core.Counters
module Summary = Lld_core.Summary

type params = { streams : int; ops_per_stream : int; seed : int }

let default = { streams = 8; ops_per_stream = 200; seed = 7 }

type result = {
  params : params;
  elapsed_ns : int;
  ops : int;
  us_per_op : float;
  record_creates : int;
  mesh_hops : int;
}

(* One client stream: a private list plus the blocks it put there. *)
type stream = {
  aru : Types.Aru_id.t;
  list : Types.List_id.t;
  mutable blocks : Types.Block_id.t list; (* reverse order *)
  rng : Rng.t;
  mutable remaining : int;
}

let block_bytes = 4096

let start lld ~seed ~ops =
  let aru = Lld.begin_aru lld in
  let list = Lld.new_list lld ~aru () in
  { aru; list; blocks = []; rng = Rng.create ~seed; remaining = ops }

(* Execute one operation of the stream; returns false when done. *)
let step lld s =
  if s.remaining <= 0 then false
  else begin
    s.remaining <- s.remaining - 1;
    (match (Rng.int s.rng 10, s.blocks) with
    | (0 | 1 | 2 | 3), _ | _, [] ->
      (* append a block *)
      let pred =
        match s.blocks with
        | [] -> Summary.Head
        | b :: _ -> Summary.After b
      in
      let b = Lld.new_block lld ~aru:s.aru ~list:s.list ~pred () in
      s.blocks <- b :: s.blocks
    | (4 | 5 | 6 | 7), b :: _ ->
      (* write the most recent block *)
      let data = Bytes.make block_bytes (Char.chr (Rng.int s.rng 256)) in
      Lld.write lld ~aru:s.aru b data
    | (8 | 9), b :: rest ->
      (* read it back, occasionally delete it *)
      ignore (Lld.read lld ~aru:s.aru b);
      if Rng.int s.rng 3 = 0 then begin
        Lld.delete_block lld ~aru:s.aru b;
        s.blocks <- rest
      end
    | _, _ :: _ -> assert false);
    true
  end

let finish lld s = Lld.end_aru lld s.aru

let measure lld f =
  let clock = Lld.clock lld in
  let counters = Lld.counters lld in
  let t0 = Clock.now_ns clock in
  let creates0 = counters.Counters.record_creates in
  let hops0 = counters.Counters.mesh_hops in
  let ops = f () in
  let elapsed_ns = Clock.now_ns clock - t0 in
  ( elapsed_ns,
    ops,
    counters.Counters.record_creates - creates0,
    counters.Counters.mesh_hops - hops0 )

let mk_result params (elapsed_ns, ops, record_creates, mesh_hops) =
  {
    params;
    elapsed_ns;
    ops;
    us_per_op = float_of_int elapsed_ns /. 1e3 /. float_of_int (max 1 ops);
    record_creates;
    mesh_hops;
  }

let run_interleaved lld p =
  mk_result p
    (measure lld (fun () ->
         let streams =
           List.init p.streams (fun i ->
               start lld ~seed:(p.seed + i) ~ops:p.ops_per_stream)
         in
         let ops = ref 0 in
         let progressed = ref true in
         while !progressed do
           progressed := false;
           List.iter
             (fun s ->
               if step lld s then begin
                 incr ops;
                 progressed := true
               end)
             streams
         done;
         List.iter (finish lld) streams;
         Lld.flush lld;
         !ops))

let run_serial lld p =
  mk_result p
    (measure lld (fun () ->
         let ops = ref 0 in
         for i = 0 to p.streams - 1 do
           let s = start lld ~seed:(p.seed + i) ~ops:p.ops_per_stream in
           while step lld s do
             incr ops
           done;
           finish lld s
         done;
         Lld.flush lld;
         !ops))
