module Clock = Lld_sim.Clock
module Geometry = Lld_disk.Geometry
module Fault = Lld_disk.Fault
module Disk = Lld_disk.Disk
module Rng = Lld_sim.Rng
module Lld = Lld_core.Lld
module Fs = Lld_minixfs.Fs
module Fsck = Lld_minixfs.Fsck

type params = { seed : int; operations : int; crash_points : int }

let default = { seed = 42; operations = 300; crash_points = 24 }

type outcome = {
  crash_after : int;
  consistent : bool;
  problems : Lld_minixfs.Fsck.problem list;
  files_surviving : int;
}

type result = {
  params : params;
  outcomes : outcome list;
  all_consistent : bool;
}

(* 32 KB segments: seals — the crash granularity — happen every few
   operations. *)
let geom = Geometry.v ~segment_bytes:(32 * 1024) ~num_segments:512 ()

(* A deterministic mixed workload driven by its own generator.  Paths
   come from a bounded namespace so operations collide realistically
   (create over existing, delete missing, rename onto a file, ...).
   Randomness is drawn in explicit, fixed order so runs reproduce. *)
let workload ?(trace = fun (_ : string) -> ()) rng fs operations =
  let dir d = Printf.sprintf "/d%d" (d mod 8) in
  let file d f = Printf.sprintf "%s/f%d" (dir d) (f mod 12) in
  for d = 0 to 7 do
    try Fs.mkdir fs (dir d) with Fs.Already_exists _ -> ()
  done;
  for i = 1 to operations do
    let d = Rng.int rng 8 in
    let f = Rng.int rng 12 in
    let ignore_fs_errors op =
      try op () with
      | Fs.Not_found_path _ | Fs.Already_exists _ | Fs.Is_a_directory _
      | Fs.Not_a_directory _ | Fs.Directory_not_empty _ | Fs.Invalid_name _
      | Fs.Out_of_inodes ->
        ()
    in
    match Rng.int rng 10 with
    | 0 | 1 | 2 ->
      trace (Printf.sprintf "%d create %s" i (file d f));
      ignore_fs_errors (fun () -> Fs.create fs (file d f))
    | 3 | 4 ->
      let n = 512 + Rng.int rng 8192 in
      trace (Printf.sprintf "%d write %s %d" i (file d f) n);
      ignore_fs_errors (fun () ->
          Fs.write_file fs (file d f) ~off:0 (Bytes.make n 'x'))
    | 5 ->
      trace (Printf.sprintf "%d unlink %s" i (file d f));
      ignore_fs_errors (fun () -> Fs.unlink fs (file d f))
    | 6 ->
      let d2 = Rng.int rng 8 in
      let f2 = Rng.int rng 12 in
      trace (Printf.sprintf "%d rename %s -> %s" i (file d f) (file d2 f2));
      ignore_fs_errors (fun () -> Fs.rename fs (file d f) (file d2 f2))
    | 7 ->
      let d2 = Rng.int rng 8 in
      let f2 = Rng.int rng 12 in
      trace (Printf.sprintf "%d link %s -> %s" i (file d f) (file d2 f2));
      ignore_fs_errors (fun () -> Fs.link fs (file d f) (file d2 f2))
    | 8 ->
      let size = Rng.int rng 4096 in
      trace (Printf.sprintf "%d truncate %s %d" i (file d f) size);
      ignore_fs_errors (fun () -> Fs.truncate fs (file d f) ~size)
    | _ ->
      ignore_fs_errors (fun () ->
          ignore (Fs.read_file fs (file d f) ~off:0 ~len:1024))
  done;
  Fs.flush fs

let count_files fs =
  List.fold_left
    (fun acc d ->
      match Fs.readdir fs ("/" ^ d) with
      | entries -> acc + List.length entries
      | exception Fs.Not_a_directory _ -> acc)
    0 (Fs.readdir fs "/")

let run ?(with_arus = true) ?trace (p : params) =
  let lld_config =
    if with_arus then Lld_core.Config.default else Lld_core.Config.old_lld
  in
  let fs_config = if with_arus then Fs.config_new else Fs.config_old in
  let outcomes =
    List.init p.crash_points (fun crash_after ->
        let clock = Clock.create () in
        let disk = Disk.create ~clock geom in
        let lld = Lld.create ~config:lld_config disk in
        let fs = Fs.mkfs ~config:fs_config ~inode_count:1024 lld in
        Fs.flush fs;
        Fault.schedule_crash (Disk.fault disk) (Fault.After_writes crash_after);
        let rng = Rng.create ~seed:(p.seed + crash_after) in
        (try
           workload ?trace rng fs p.operations;
           (* finished before the crash point: force the crash *)
           Fault.schedule_crash (Disk.fault disk) (Fault.After_writes 0);
           try Disk.write disk ~offset:0 (Bytes.make 1 'x')
           with Fault.Crashed -> ()
         with Fault.Crashed -> ());
        let lld2, _report = Lld.recover ~config:lld_config disk in
        let fs2 = Fs.mount ~config:fs_config lld2 in
        let report = Fsck.run fs2 in
        {
          crash_after;
          consistent = Fsck.ok report;
          problems = report.Fsck.problems;
          files_surviving = count_files fs2;
        })
  in
  {
    params = p;
    outcomes;
    all_consistent = List.for_all (fun o -> o.consistent) outcomes;
  }
