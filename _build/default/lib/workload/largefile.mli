(** The large-file benchmark of paper §5.2 / Figure 6.

    One 78.125 MB file is written sequentially (write1), read
    sequentially (read1), re-written in random order (write2), read in
    random order (read2), and finally read sequentially again (read3);
    each phase reports MB/s on the virtual clock. *)

type params = {
  file_bytes : int;
  io_bytes : int;  (** request size for the sequential phases *)
  seed : int;  (** for the random-order phases *)
}

val paper : params
(** 78.125 MB, 64 KB sequential requests, 4 KB random requests. *)

val scaled : params -> float -> params

type phase = { label : string; bytes : int; elapsed_ns : int; mb_per_sec : float }

type result = {
  params : params;
  write1 : phase;
  read1 : phase;
  write2 : phase;
  read2 : phase;
  read3 : phase;
}

val phases : result -> phase list

val run : Setup.instance -> params -> result
