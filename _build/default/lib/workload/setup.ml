module Clock = Lld_sim.Clock
module Geometry = Lld_disk.Geometry
module Disk = Lld_disk.Disk
module Config = Lld_core.Config
module Lld = Lld_core.Lld
module Fs = Lld_minixfs.Fs

type variant = Old | New | New_delete

let variant_label = function
  | Old -> "old"
  | New -> "new"
  | New_delete -> "new, delete"

let all_variants = [ Old; New; New_delete ]

let lld_config = function
  | Old -> Config.old_lld
  | New | New_delete -> Config.default

let fs_config = function
  | Old -> Fs.config_old
  | New -> Fs.config_new
  | New_delete -> Fs.config_new_delete

type instance = {
  disk : Lld_disk.Disk.t;
  lld : Lld_core.Lld.t;
  fs : Lld_minixfs.Fs.t;
  clock : Lld_sim.Clock.t;
}

let make ?(geom = Geometry.paper) ?inode_count variant =
  let clock = Clock.create () in
  let disk = Disk.create ~clock geom in
  let lld = Lld.create ~config:(lld_config variant) disk in
  let fs = Fs.mkfs ~config:(fs_config variant) ?inode_count lld in
  Fs.flush fs;
  Clock.reset clock;
  Lld_core.Counters.reset (Lld.counters lld);
  { disk; lld; fs; clock }

let make_raw ?(geom = Geometry.paper) variant =
  let clock = Clock.create () in
  let disk = Disk.create ~clock geom in
  let lld = Lld.create ~config:(lld_config variant) disk in
  Lld.flush lld;
  Clock.reset clock;
  Lld_core.Counters.reset (Lld.counters lld);
  (disk, lld)
