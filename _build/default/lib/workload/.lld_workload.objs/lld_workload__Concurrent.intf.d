lib/workload/concurrent.mli: Lld_core
