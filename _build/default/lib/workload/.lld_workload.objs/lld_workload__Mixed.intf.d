lib/workload/mixed.mli: Setup
