lib/workload/concurrent.ml: Bytes Char List Lld_core Lld_sim
