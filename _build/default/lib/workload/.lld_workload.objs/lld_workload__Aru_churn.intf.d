lib/workload/aru_churn.mli: Lld_core
