lib/workload/largefile.ml: Array Bytes Char Fun Lld_minixfs Lld_sim Setup
