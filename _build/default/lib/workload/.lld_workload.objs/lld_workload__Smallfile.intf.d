lib/workload/smallfile.mli: Setup
