lib/workload/smallfile.ml: Bytes Char Lld_core Lld_minixfs Lld_sim Printf Setup
