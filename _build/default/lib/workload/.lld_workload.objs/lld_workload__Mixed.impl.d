lib/workload/mixed.ml: Bytes Char List Lld_minixfs Lld_sim Printf Setup
