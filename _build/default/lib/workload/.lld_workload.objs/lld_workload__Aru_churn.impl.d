lib/workload/aru_churn.ml: Lld_core Lld_sim
