lib/workload/largefile.mli: Setup
