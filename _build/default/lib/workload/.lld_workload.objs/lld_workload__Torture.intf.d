lib/workload/torture.mli: Lld_minixfs Lld_sim
