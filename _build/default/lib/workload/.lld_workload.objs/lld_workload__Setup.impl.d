lib/workload/setup.ml: Lld_core Lld_disk Lld_minixfs Lld_sim
