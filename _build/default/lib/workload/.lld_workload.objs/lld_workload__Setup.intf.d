lib/workload/setup.mli: Lld_core Lld_disk Lld_minixfs Lld_sim
