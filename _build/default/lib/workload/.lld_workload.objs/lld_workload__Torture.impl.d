lib/workload/torture.ml: Bytes List Lld_core Lld_disk Lld_minixfs Lld_sim Printf
