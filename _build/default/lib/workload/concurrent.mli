(** A concurrency workload on the raw LD interface: [streams] logical
    clients, each building and mutating its own list inside its own ARU,
    interleaved round-robin; all commit at the end.

    Exercises exactly the machinery that distinguishes the concurrent
    prototype — one shadow state per stream, the n+2 version bound, and
    commit-time merging — and measures its cost relative to running the
    same operations serially (each stream in turn). *)

type params = {
  streams : int;
  ops_per_stream : int;
  seed : int;
}

val default : params
(** 8 streams, 200 operations each. *)

type result = {
  params : params;
  elapsed_ns : int;
  ops : int;
  us_per_op : float;
  record_creates : int;
  mesh_hops : int;
}

val run_interleaved : Lld_core.Lld.t -> params -> result
(** Requires a concurrent-mode logical disk. *)

val run_serial : Lld_core.Lld.t -> params -> result
(** The same operations, one complete stream (begin..commit) at a
    time.  Works in both modes. *)
