(** The list-table: one persistent record per known list (paper §2,
    Figure 3), plus list-identifier allocation.

    Identifiers are handed out from a watermark with a free pool for
    reuse; after recovery the pool is rebuilt from the surviving
    persistent records. *)

type t

val create : max_lists:int -> t
(** [max_lists] caps how many lists may exist simultaneously. *)

val anchor : t -> Types.List_id.t -> Record.list_r
(** The persistent record for the identifier, created on first use
    (with [exists = false]). *)

val find_anchor : t -> Types.List_id.t -> Record.list_r option
(** The persistent record only if it was ever materialised. *)

val alloc_id : t -> Types.List_id.t option
(** A fresh or recycled identifier; [None] when [max_lists] lists
    already exist.  The first identifier handed out on a fresh table is
    1 (deterministic, so clients can rely on well-known lists). *)

val release_id : t -> Types.List_id.t -> unit

val rebuild_free : t -> unit
(** Rebuild watermark and free pool from the persistent records'
    existence flags (used after recovery). *)

val iter : t -> (Record.list_r -> unit) -> unit
(** Over all materialised persistent records, in increasing identifier
    order. *)

val existing_count : t -> int
