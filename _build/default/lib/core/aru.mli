(** The in-memory record of one active atomic recovery unit.

    Owns the heads of the ARU's shadow same-state chains (paper Figure
    4) and its list-operation log.  In sequential ("old LLD") mode the
    shadow chains stay empty and [freed_*] collects identifiers
    deallocated inside the ARU, recycled only at EndARU so a Simple
    re-allocation of the same identifier can never be reordered before
    the ARU's buffered deallocation during recovery replay. *)

type t = {
  id : Types.Aru_id.t;
  mutable shadow_blocks : Record.block option;
      (** head of the same-state chain of this ARU's shadow block records *)
  mutable shadow_lists : Record.list_r option;
  log : Link_log.t;
  mutable owned_lists : Record.list_r list;
      (** lists this ARU allocated: their owner mark is cleared at
          EndARU so scavengers leave committed empty lists alone *)
  mutable freed_blocks : Types.Block_id.t list;  (** sequential mode only *)
  mutable freed_lists : Types.List_id.t list;  (** sequential mode only *)
}

val create : Types.Aru_id.t -> t

val push_shadow_block : t -> Record.block -> unit
(** Prepend to the shadow chain (the record must not be on any chain). *)

val push_shadow_list : t -> Record.list_r -> unit

val iter_shadow_blocks : t -> (Record.block -> unit) -> unit
(** In chain order (most recently created first). *)

val iter_shadow_lists : t -> (Record.list_r -> unit) -> unit

val shadow_block_count : t -> int
