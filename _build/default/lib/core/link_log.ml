type op =
  | Insert of {
      list : Types.List_id.t;
      block : Types.Block_id.t;
      pred : Summary.pred;
    }
  | Delete_block of { block : Types.Block_id.t }
  | Delete_list of { list : Types.List_id.t }

type t = { mutable rev : op list; mutable length : int }

let create () = { rev = []; length = 0 }

let add t op =
  t.rev <- op :: t.rev;
  t.length <- t.length + 1

let length t = t.length
let to_list t = List.rev t.rev

let pp_op ppf = function
  | Insert { list; block; pred } ->
    Format.fprintf ppf "insert %a into %a (%s)" Types.Block_id.pp block
      Types.List_id.pp list
      (match pred with
      | Summary.Head -> "head"
      | Summary.After p -> Format.asprintf "after %a" Types.Block_id.pp p)
  | Delete_block { block } ->
    Format.fprintf ppf "delete-block %a" Types.Block_id.pp block
  | Delete_list { list } ->
    Format.fprintf ppf "delete-list %a" Types.List_id.pp list
