(** The open segment buffer and the on-disk segment format.

    A segment is filled in main memory and written to disk in a single
    operation (paper §2).  Data blocks occupy fixed 4 KB slots growing
    from the front; summary entries accumulate and are serialised at the
    back, next to a trailing header.  Either region can exhaust the
    segment first — a workload of pure meta-data operations produces
    segments that are almost entirely summary (the paper's ARU-latency
    experiment writes 24 such segments for 500,000 commit records).

    The trailing header carries a checksum over the whole segment, so a
    torn write (power loss mid-segment) is detected at recovery no
    matter what the segment's disk slot previously contained. *)

type t

val create : Lld_disk.Geometry.t -> seq:int -> disk_index:int -> t
(** A fresh, empty buffer destined for disk segment [disk_index], with
    log sequence number [seq]. *)

val seq : t -> int
val disk_index : t -> int
val is_empty : t -> bool
val slots_used : t -> int
val summary_bytes : t -> int
val entry_count : t -> int

val has_room : t -> data_blocks:int -> entry_bytes:int -> bool
(** Whether [data_blocks] more slots plus [entry_bytes] more summary
    bytes fit. *)

(** Which stream wrote a slot last.  Slot reuse across scopes is only
    sound when the writer's commit record is guaranteed to land in this
    same segment (see [Lld.end_aru]'s reservation); otherwise a sealed
    segment could expose an uncommitted ARU's bytes through an earlier,
    durable entry that shares the slot. *)
type scope = Simple_scope | Aru_scope of Types.Aru_id.t

val slot_of_block : t -> Types.Block_id.t -> int option
(** The slot currently holding this block's data in the open segment,
    if any. *)

val put_block :
  t -> scope:scope -> allow_cross_scope:bool -> Types.Block_id.t -> bytes -> int
(** Store block data and return its slot.  The block's existing slot is
    reused when [allow_cross_scope] is true or the previous writer had
    the same scope; otherwise a fresh slot is taken (the old slot keeps
    its bytes for the entries that reference it).  Raises
    [Invalid_argument] when there is no room (callers must check
    {!has_room}) or when the data is not exactly one block. *)

val read_slot : t -> slot:int -> bytes
(** Copy of the data in an occupied slot. *)

val add_entry : t -> Summary.t -> unit
(** Append a summary entry.  Raises [Invalid_argument] when there is no
    room. *)

val entries : t -> Summary.t list
(** Entries in append order. *)

val seal : t -> bytes
(** Serialise to the full segment image (data + summary + header). *)

(** {2 Reading sealed segments (recovery, cleaner)} *)

type parsed = {
  p_seq : int;
  p_entries : Summary.t list;  (** in append order *)
  p_image : bytes;  (** the full segment image, for slot reads *)
}

val parse : Lld_disk.Geometry.t -> bytes -> parsed option
(** [None] when the image has no valid header or fails its checksum
    (an unwritten or torn segment). *)

val parsed_slot : Lld_disk.Geometry.t -> parsed -> slot:int -> bytes
