type t = {
  id : Types.Aru_id.t;
  mutable shadow_blocks : Record.block option;
  mutable shadow_lists : Record.list_r option;
  log : Link_log.t;
  mutable owned_lists : Record.list_r list;
  mutable freed_blocks : Types.Block_id.t list;
  mutable freed_lists : Types.List_id.t list;
}

let create id =
  {
    id;
    shadow_blocks = None;
    shadow_lists = None;
    log = Link_log.create ();
    owned_lists = [];
    freed_blocks = [];
    freed_lists = [];
  }

let push_shadow_block t r =
  r.Record.next_same_state <- t.shadow_blocks;
  t.shadow_blocks <- Some r

let push_shadow_list t r =
  r.Record.l_next_same_state <- t.shadow_lists;
  t.shadow_lists <- Some r

let iter_shadow_blocks t f =
  let rec loop = function
    | None -> ()
    | Some r ->
      let next = r.Record.next_same_state in
      f r;
      loop next
  in
  loop t.shadow_blocks

let iter_shadow_lists t f =
  let rec loop = function
    | None -> ()
    | Some r ->
      let next = r.Record.l_next_same_state in
      f r;
      loop next
  in
  loop t.shadow_lists

let shadow_block_count t =
  let n = ref 0 in
  iter_shadow_blocks t (fun _ -> incr n);
  !n
