(** Identifier types of the Logical Disk name-spaces.

    Logical blocks, block lists and atomic recovery units each get a
    distinct abstract identifier type so they cannot be confused at
    compile time. *)

module type ID = sig
  type t

  val of_int : int -> t
  (** Raises [Invalid_argument] on negative input. *)

  val to_int : t -> int
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val hash : t -> int
  val pp : Format.formatter -> t -> unit
end

module Block_id : ID
(** Logical block number. *)

module List_id : ID
(** Logical block-list identifier. *)

module Aru_id : ID
(** Atomic-recovery-unit identifier. *)
