(** The per-ARU list-operation log (paper §4).

    List operations inside an ARU execute against the ARU's shadow state
    without generating segment-summary entries; each appends an entry
    here.  On commit the log is replayed, in order, against the
    committed state, which generates the summary entries and merges
    concurrent versions of the same list deterministically. *)

type op =
  | Insert of {
      list : Types.List_id.t;
      block : Types.Block_id.t;
      pred : Summary.pred;
    }
  | Delete_block of { block : Types.Block_id.t }
      (** unlink from its list (if any) and deallocate *)
  | Delete_list of { list : Types.List_id.t }

type t

val create : unit -> t
val add : t -> op -> unit
val length : t -> int

val to_list : t -> op list
(** Entries in append order. *)

val pp_op : Format.formatter -> op -> unit
