(** List manipulation shared by every state.

    The same insert / unlink / delete-list logic runs against three
    different views: an ARU's shadow state (operations inside an ARU),
    the committed state (simple operations and commit-time replay of the
    list-operation log), and the persistent state (recovery replay).
    A {!ctx} bundles the view's accessors:

    - [peek_*] returns the record as currently visible in the view
      without materialising a new version (used while walking);
    - [get_*] returns a record that may be mutated in the view
      (performing copy-on-write into the target state when needed).

    Operations are {e best-effort} on conflicting states: an operation
    that is infeasible in the target view (inserting a block that is
    already on a list, unlinking a non-member, …) returns [`Skipped].
    This makes commit-time merging of concurrent ARUs deterministic, and
    — because recovery replays the identical entry sequence against the
    identically-evolving state — recovery reaches the same result as the
    run-time committed state.  Clients that follow the paper's locking
    contract never trigger a skip. *)

type ctx = {
  peek_block : Types.Block_id.t -> Record.block;
  get_block : Types.Block_id.t -> Record.block;
  peek_list : Types.List_id.t -> Record.list_r;
  get_list : Types.List_id.t -> Record.list_r;
  on_pred_hop : unit -> unit;  (** charged per predecessor-search hop *)
}

type outcome = [ `Applied | `Skipped ]

val insert :
  ctx -> list:Types.List_id.t -> block:Types.Block_id.t -> pred:Summary.pred ->
  outcome
(** Link an allocated block into the list at the given position.
    Skipped when the list does not exist, the block is already a member
    of some list, or the predecessor is not a member of the list. *)

val unlink :
  ctx -> list:Types.List_id.t -> block:Types.Block_id.t -> outcome
(** Remove the block from the list (predecessor search from the head;
    this search is the deletion cost the paper's "improved deletion"
    avoids, §5.3).  Skipped when the block is not a member. *)

val delete_list :
  ctx ->
  list:Types.List_id.t ->
  dealloc:(Record.block -> unit) ->
  outcome
(** Walk the list from its head, calling [dealloc] on each member (the
    callback marks the block free and emits its log entry), then mark
    the list itself deleted.  No predecessor searches are needed —
    the cheap deletion path. *)
