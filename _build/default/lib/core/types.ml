module type ID = sig
  type t

  val of_int : int -> t
  val to_int : t -> int
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val hash : t -> int
  val pp : Format.formatter -> t -> unit
end

module Make_id (P : sig
  val prefix : string
end) : ID = struct
  type t = int

  let of_int i =
    if i < 0 then invalid_arg (P.prefix ^ "_id.of_int: negative");
    i

  let to_int i = i
  let equal = Int.equal
  let compare = Int.compare
  let hash = Hashtbl.hash
  let pp ppf i = Format.fprintf ppf "%s%d" P.prefix i
end

module Block_id = Make_id (struct
  let prefix = "b"
end)

module List_id = Make_id (struct
  let prefix = "l"
end)

module Aru_id = Make_id (struct
  let prefix = "aru"
end)
