module Codec = Lld_util.Bytes_codec
module Geometry = Lld_disk.Geometry

(* Trailing header: magic u32, seq u64, summary_len u32, entry_count u32,
   slots_used u32, checksum u64 (over everything before the checksum). *)
let header_bytes = 32
let magic = 0x4c4c4453 (* "LLDS" *)

type scope = Simple_scope | Aru_scope of Types.Aru_id.t

type t = {
  geom : Geometry.t;
  seq : int;
  disk_index : int;
  image : bytes; (* data slots are blitted here as they arrive *)
  slot_of : (int, int * scope) Hashtbl.t; (* block id -> current slot *)
  mutable slots_used : int;
  mutable entries_rev : Summary.t list;
  mutable entry_count : int;
  mutable summary_bytes : int;
}

let create geom ~seq ~disk_index =
  {
    geom;
    seq;
    disk_index;
    image = Bytes.make geom.Geometry.segment_bytes '\000';
    slot_of = Hashtbl.create 64;
    slots_used = 0;
    entries_rev = [];
    entry_count = 0;
    summary_bytes = 0;
  }

let seq t = t.seq
let disk_index t = t.disk_index
let is_empty t = t.slots_used = 0 && t.entry_count = 0
let slots_used t = t.slots_used
let summary_bytes t = t.summary_bytes
let entry_count t = t.entry_count

let has_room t ~data_blocks ~entry_bytes =
  let data = (t.slots_used + data_blocks) * t.geom.Geometry.block_bytes in
  data + t.summary_bytes + entry_bytes + header_bytes
  <= t.geom.Geometry.segment_bytes

let slot_of_block t block =
  Option.map fst (Hashtbl.find_opt t.slot_of (Types.Block_id.to_int block))

let scope_equal a b =
  match (a, b) with
  | Simple_scope, Simple_scope -> true
  | Aru_scope x, Aru_scope y -> Types.Aru_id.equal x y
  | (Simple_scope | Aru_scope _), _ -> false

let put_block t ~scope ~allow_cross_scope block data =
  let bb = t.geom.Geometry.block_bytes in
  if Bytes.length data <> bb then
    invalid_arg "Segment.put_block: data must be exactly one block";
  let key = Types.Block_id.to_int block in
  let reusable =
    match Hashtbl.find_opt t.slot_of key with
    | Some (slot, prev) when allow_cross_scope || scope_equal prev scope ->
      Some slot
    | Some _ | None -> None
  in
  let slot =
    match reusable with
    | Some slot -> slot
    | None ->
      if not (has_room t ~data_blocks:1 ~entry_bytes:0) then
        invalid_arg "Segment.put_block: no room";
      let slot = t.slots_used in
      t.slots_used <- slot + 1;
      slot
  in
  Hashtbl.replace t.slot_of key (slot, scope);
  Bytes.blit data 0 t.image (slot * bb) bb;
  slot

let read_slot t ~slot =
  if slot < 0 || slot >= t.slots_used then invalid_arg "Segment.read_slot";
  let bb = t.geom.Geometry.block_bytes in
  Bytes.sub t.image (slot * bb) bb

let add_entry t entry =
  let size = Summary.encoded_size entry in
  if not (has_room t ~data_blocks:0 ~entry_bytes:size) then
    invalid_arg "Segment.add_entry: no room";
  t.entries_rev <- entry :: t.entries_rev;
  t.entry_count <- t.entry_count + 1;
  t.summary_bytes <- t.summary_bytes + size

let entries t = List.rev t.entries_rev

let seal t =
  let total = t.geom.Geometry.segment_bytes in
  let w = Codec.Writer.create ~capacity:(t.summary_bytes + 16) () in
  List.iter (Summary.encode w) (entries t);
  let summary = Codec.Writer.contents w in
  let summary_len = Bytes.length summary in
  assert (summary_len = t.summary_bytes);
  let summary_off = total - header_bytes - summary_len in
  Bytes.blit summary 0 t.image summary_off summary_len;
  let h = total - header_bytes in
  Codec.set_u32 t.image h magic;
  Codec.set_u32 t.image (h + 4) (t.seq land 0xffffffff);
  Codec.set_u32 t.image (h + 8) (t.seq lsr 32);
  Codec.set_u32 t.image (h + 12) summary_len;
  Codec.set_u32 t.image (h + 16) t.entry_count;
  Codec.set_u32 t.image (h + 20) t.slots_used;
  let checksum = Codec.hash64 ~pos:0 ~len:(total - 8) t.image in
  Codec.set_u32 t.image (h + 24) (Int64.to_int (Int64.logand checksum 0xffffffffL));
  Codec.set_u32 t.image (h + 28)
    (Int64.to_int (Int64.logand (Int64.shift_right_logical checksum 32) 0xffffffffL));
  t.image

type parsed = { p_seq : int; p_entries : Summary.t list; p_image : bytes }

let parse geom image =
  let total = geom.Geometry.segment_bytes in
  if Bytes.length image <> total then invalid_arg "Segment.parse: bad image size";
  let h = total - header_bytes in
  if Codec.get_u32 image h <> magic then None
  else begin
    let stored =
      Int64.logor
        (Int64.of_int (Codec.get_u32 image (h + 24)))
        (Int64.shift_left (Int64.of_int (Codec.get_u32 image (h + 28))) 32)
    in
    if not (Int64.equal stored (Codec.hash64 ~pos:0 ~len:(total - 8) image)) then None
    else begin
      let seq = Codec.get_u32 image (h + 4) lor (Codec.get_u32 image (h + 8) lsl 32) in
      let summary_len = Codec.get_u32 image (h + 12) in
      let entry_count = Codec.get_u32 image (h + 16) in
      let r = Codec.Reader.of_bytes ~pos:(h - summary_len) ~len:summary_len image in
      let rec decode_all n acc =
        if n = 0 then List.rev acc else decode_all (n - 1) (Summary.decode r :: acc)
      in
      match decode_all entry_count [] with
      | entries -> Some { p_seq = seq; p_entries = entries; p_image = image }
      | exception (Codec.Truncated | Errors.Corrupt _) -> None
    end
  end

let parsed_slot geom parsed ~slot =
  let bb = geom.Geometry.block_bytes in
  if slot < 0 || (slot + 1) * bb > Bytes.length parsed.p_image then
    invalid_arg "Segment.parsed_slot";
  Bytes.sub parsed.p_image (slot * bb) bb
