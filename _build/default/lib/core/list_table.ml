type t = {
  table : (int, Record.list_r) Hashtbl.t;
  max_lists : int;
  mutable watermark : int; (* next never-used identifier *)
  mutable free : int list;
  mutable existing : int;
}

let create ~max_lists =
  if max_lists <= 0 then invalid_arg "List_table.create";
  { table = Hashtbl.create 256; max_lists; watermark = 1; free = []; existing = 0 }

let anchor t l =
  let i = Types.List_id.to_int l in
  match Hashtbl.find_opt t.table i with
  | Some r -> r
  | None ->
    let r = Record.fresh_list l in
    Hashtbl.replace t.table i r;
    r

let find_anchor t l = Hashtbl.find_opt t.table (Types.List_id.to_int l)

let alloc_id t =
  if t.existing >= t.max_lists then None
  else begin
    t.existing <- t.existing + 1;
    match t.free with
    | i :: rest ->
      t.free <- rest;
      Some (Types.List_id.of_int i)
    | [] ->
      let i = t.watermark in
      t.watermark <- i + 1;
      Some (Types.List_id.of_int i)
  end

let release_id t l =
  t.free <- Types.List_id.to_int l :: t.free;
  t.existing <- t.existing - 1

let rebuild_free t =
  let max_id = ref 0 in
  let existing = ref 0 in
  Hashtbl.iter
    (fun i r ->
      if r.Record.exists then begin
        incr existing;
        if i > !max_id then max_id := i
      end)
    t.table;
  t.watermark <- !max_id + 1;
  t.existing <- !existing;
  let free = ref [] in
  for i = t.watermark - 1 downto 1 do
    let exists =
      match Hashtbl.find_opt t.table i with
      | Some r -> r.Record.exists
      | None -> false
    in
    if not exists then free := i :: !free
  done;
  t.free <- !free

let iter t f =
  let ids = Hashtbl.fold (fun i _ acc -> i :: acc) t.table [] in
  List.iter
    (fun i -> f (Hashtbl.find t.table i))
    (List.sort Int.compare ids)

let existing_count t = t.existing
