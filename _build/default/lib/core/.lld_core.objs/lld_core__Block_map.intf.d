lib/core/block_map.mli: Record Types
