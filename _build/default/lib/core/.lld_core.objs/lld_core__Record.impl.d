lib/core/record.ml: Types
