lib/core/aru.ml: Link_log Record Types
