lib/core/disk_layout.mli: Lld_disk
