lib/core/record.mli: Types
