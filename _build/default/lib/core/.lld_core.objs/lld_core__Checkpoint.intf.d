lib/core/checkpoint.mli: Lld_disk Summary
