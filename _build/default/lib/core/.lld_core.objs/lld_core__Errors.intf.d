lib/core/errors.mli: Format Types
