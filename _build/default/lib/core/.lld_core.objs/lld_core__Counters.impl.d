lib/core/counters.ml: Format
