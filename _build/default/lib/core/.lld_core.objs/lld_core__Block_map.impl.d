lib/core/block_map.ml: Array Format List Record Types
