lib/core/link_log.ml: Format List Summary Types
