lib/core/lld.mli: Config Counters Lld_disk Lld_sim Recovery Summary Types
