lib/core/ld_intf.ml: Counters Lld_sim Summary Types
