lib/core/list_table.ml: Hashtbl Int List Record Types
