lib/core/checkpoint.ml: Bytes Disk_layout Errors Int64 List Lld_disk Lld_util Printf Summary Types
