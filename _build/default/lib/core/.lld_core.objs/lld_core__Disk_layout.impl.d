lib/core/disk_layout.ml: Lld_disk
