lib/core/segment.mli: Lld_disk Summary Types
