lib/core/counters.mli: Format
