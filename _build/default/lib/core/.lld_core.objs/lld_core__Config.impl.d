lib/core/config.ml: Format Lld_sim
