lib/core/list_table.mli: Record Types
