lib/core/splice.mli: Record Summary Types
