lib/core/summary.mli: Format Lld_util Types
