lib/core/segment.ml: Bytes Errors Hashtbl Int64 List Lld_disk Lld_util Option Summary Types
