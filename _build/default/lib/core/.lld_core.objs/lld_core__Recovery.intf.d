lib/core/recovery.mli: Block_map Format List_table Lld_disk
