lib/core/config.mli: Format Lld_sim
