lib/core/splice.ml: Errors Format Record Summary Types
