lib/core/summary.ml: Errors Format Int64 Lld_util Printf Types
