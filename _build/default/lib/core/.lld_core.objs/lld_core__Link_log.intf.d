lib/core/link_log.mli: Format Summary Types
