lib/core/aru.mli: Link_log Record Types
