lib/core/recovery.ml: Block_map Checkpoint Disk_layout Errors Format Hashtbl Int List List_table Lld_disk Option Record Segment Splice Summary Types
