(** Operation counters of a logical-disk instance.

    Counters record the meta-data work the cost model charges for, so
    tests can assert {e why} a configuration is slower (e.g. deletion
    performs predecessor searches; the improved policy performs fewer —
    paper §5.3). *)

type t = {
  mutable reads : int;
  mutable writes : int;
  mutable new_blocks : int;
  mutable delete_blocks : int;
  mutable new_lists : int;
  mutable delete_lists : int;
  mutable arus_begun : int;
  mutable arus_committed : int;
  mutable arus_aborted : int;
  mutable record_creates : int;
  mutable record_transitions : int;
  mutable mesh_hops : int;
  mutable pred_search_hops : int;
  mutable summary_entries : int;
  mutable link_log_appends : int;
  mutable link_log_replays : int;
  mutable replay_skips : int;  (** conflicting merge operations skipped *)
  mutable segments_written : int;
  mutable segments_cleaned : int;
  mutable blocks_copied_clean : int;
  mutable checkpoints : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable readaheads : int;
  mutable flushes : int;
}

val create : unit -> t
val reset : t -> unit
val copy : t -> t
val pp : Format.formatter -> t -> unit
