type t = {
  records : Record.block array;
  mutable free : int list; (* ascending; allocation takes the head *)
  mutable allocated : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Block_map.create: capacity must be positive";
  let records =
    Array.init capacity (fun i -> Record.fresh_block (Types.Block_id.of_int i))
  in
  let free = List.init capacity (fun i -> i) in
  { records; free; allocated = 0 }

let capacity t = Array.length t.records

let in_range t b =
  let i = Types.Block_id.to_int b in
  i >= 0 && i < Array.length t.records

let anchor t b =
  if not (in_range t b) then
    invalid_arg
      (Format.asprintf "Block_map.anchor: %a out of range" Types.Block_id.pp b);
  t.records.(Types.Block_id.to_int b)

let alloc_id t =
  match t.free with
  | [] -> None
  | i :: rest ->
    t.free <- rest;
    t.allocated <- t.allocated + 1;
    Some (Types.Block_id.of_int i)

let release_id t b =
  t.free <- Types.Block_id.to_int b :: t.free;
  t.allocated <- t.allocated - 1

let rebuild_free t =
  let free = ref [] in
  let allocated = ref 0 in
  for i = Array.length t.records - 1 downto 0 do
    if t.records.(i).Record.alloc then incr allocated else free := i :: !free
  done;
  t.free <- !free;
  t.allocated <- !allocated

let iter t f = Array.iter f t.records
let allocated_count t = t.allocated
