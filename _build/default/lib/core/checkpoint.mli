(** Checkpoints of the persistent state.

    A checkpoint bounds recovery: it captures the block-number-map and
    list-table as of a log position, so recovery restores it and replays
    only later segments.  It also enables cleaning — a log segment may
    be reused only once a checkpoint covers its summary (DESIGN.md
    §5.3).

    Checkpoints additionally capture the {e pending} ARU entries: the
    [In_aru] summary entries already emitted (in covered segments) whose
    commit record has not yet been written.  Recovery re-buffers them,
    so an ARU whose commit record lands after the checkpoint still
    commits atomically, and one that never commits is still discarded
    wholesale.

    Two fixed regions at the front of the partition are written
    alternately; each chunk carries a checksum, so a crash during a
    checkpoint write leaves the other region's checkpoint intact. *)

type pending_entry = {
  pe_op : Summary.op;
  pe_seg : int;
      (** disk segment whose summary held the entry ([Write] slots are
          relative to it) *)
}

type block_entry = {
  b_id : int;
  b_member : int option;
  b_succ : int option;
  b_phys : (int * int) option;  (** (segment, slot) *)
  b_stamp : int;
}

type list_entry = {
  l_id : int;
  l_first : int option;
  l_last : int option;
  l_stamp : int;
  l_owner : int option;
      (** allocating ARU if it was still active at checkpoint time *)
}

type snapshot = {
  ckpt_id : int;  (** monotonically increasing across checkpoints *)
  covered_seq : int;  (** all segments with seq <= this are captured *)
  next_seq : int;
  stamp : int;
  next_aru : int;
  blocks : block_entry list;  (** allocated blocks only *)
  lists : list_entry list;  (** existing lists only *)
  pending : (int * pending_entry list) list;
      (** ARU id -> its buffered entries, in emission order *)
  free_order : int list;
      (** disk segment indices in the exact order the log will use them
          next; recovery reads only these (in order) to find the log
          tail instead of scanning the whole partition *)
}

val empty : snapshot
(** The snapshot written by [mkfs]: [ckpt_id = 1], nothing allocated. *)

val encode : snapshot -> bytes
val decode : bytes -> snapshot
(** Raises [Errors.Corrupt] on malformed input. *)

val write : Lld_disk.Disk.t -> region:int -> snapshot -> unit
(** Serialise into the region's segments.  Raises [Errors.Disk_full]
    when the payload exceeds the region (only possible with enormous
    pending-ARU state). *)

val read_region : Lld_disk.Disk.t -> region:int -> snapshot option
(** [None] when the region holds no complete, checksummed checkpoint. *)

val read_best : Lld_disk.Disk.t -> snapshot option
(** The valid checkpoint with the highest [ckpt_id] across both
    regions. *)
