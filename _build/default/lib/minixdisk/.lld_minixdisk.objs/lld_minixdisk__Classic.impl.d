lib/minixdisk/classic.ml: Array Bytes Char Hashtbl Int List Lld_disk Lld_minixfs Lld_util String
