lib/minixdisk/classic.mli: Lld_disk
