module Codec = Lld_util.Bytes_codec
module Lru = Lld_util.Lru
module Geometry = Lld_disk.Geometry
module Disk = Lld_disk.Disk
module Layout = Lld_minixfs.Layout
module Dirent = Lld_minixfs.Dirent

exception File_not_found of string
exception File_exists of string
exception No_space

let bb = Layout.block_bytes
let magic = 0x4d435453 (* "MCTS": Minix ClassicTanenbaum-Style *)
let inode_bytes = 64
let inodes_per_block = bb / inode_bytes
let ptrs_per_block = bb / 4
let direct_zones = 7
let bits_per_block = bb * 8
let root_ino = 1
let data_cache_limit = 64

(* In-core geometry of the on-disk layout, derived from the superblock. *)
type shape = {
  inode_count : int;
  inode_bitmap_first : int;
  inode_bitmap_blocks : int;
  zone_bitmap_first : int;
  zone_bitmap_blocks : int;
  inode_table_first : int;
  inode_table_blocks : int;
  first_data : int;
  data_zones : int;
}

type t = {
  disk : Disk.t;
  shape : shape;
  inode_bitmap : Bytes.t;
  zone_bitmap : Bytes.t;
  cache : bytes Lru.t; (* clean blocks only *)
  dirty : (int, bytes) Hashtbl.t; (* write-back data blocks *)
}

let disk t = t.disk

(* ------------------------------------------------------------------ *)
(* Raw block access: synchronous meta, write-back data                 *)

let read_block t b =
  match Hashtbl.find_opt t.dirty b with
  | Some data -> Bytes.copy data
  | None -> (
    match Lru.find t.cache b with
    | Some data -> Bytes.copy data
    | None ->
      let data = Disk.read t.disk ~offset:(b * bb) ~length:bb in
      Lru.add t.cache b (Bytes.copy data);
      data)

(* Conventional file systems write meta-data through to the disk, in
   update order (paper §3: "costly synchronous writes"). *)
let write_meta t b data =
  Lru.add t.cache b (Bytes.copy data);
  Hashtbl.remove t.dirty b;
  Disk.write t.disk ~offset:(b * bb) data

let flush_data t =
  let blocks = Hashtbl.fold (fun b data acc -> (b, data) :: acc) t.dirty [] in
  List.iter
    (fun (b, data) ->
      Disk.write t.disk ~offset:(b * bb) data;
      Lru.add t.cache b data)
    (List.sort (fun (a, _) (b, _) -> Int.compare a b) blocks);
  Hashtbl.reset t.dirty

let write_data t b data =
  Hashtbl.replace t.dirty b (Bytes.copy data);
  Lru.remove t.cache b;
  if Hashtbl.length t.dirty >= data_cache_limit then flush_data t

let flush t = flush_data t

(* ------------------------------------------------------------------ *)
(* Bitmaps                                                             *)

let bit_get bm i = Char.code (Bytes.get bm (i / 8)) land (1 lsl (i mod 8)) <> 0

let bit_set bm i v =
  let c = Char.code (Bytes.get bm (i / 8)) in
  let c = if v then c lor (1 lsl (i mod 8)) else c land lnot (1 lsl (i mod 8)) in
  Bytes.set bm (i / 8) (Char.chr c)

(* Flip one bit and synchronously rewrite the bitmap block that holds
   it. *)
let bitmap_update t ~bitmap ~first_block i v =
  bit_set bitmap i v;
  let blk = first_block + (i / bits_per_block) in
  let off = i / bits_per_block * (bb * 8) / 8 in
  write_meta t blk (Bytes.sub bitmap off bb)

let bitmap_alloc bitmap limit =
  let rec scan i = if i >= limit then None else if bit_get bitmap i then scan (i + 1) else Some i in
  scan 0

(* ------------------------------------------------------------------ *)
(* Inodes                                                              *)

type inode = {
  mutable kind : int; (* 0 free, 1 regular, 2 directory *)
  mutable nlinks : int;
  mutable size : int;
  zones : int array; (* direct ++ [indirect; dindirect]; 0 = none *)
}

let fresh_inode () =
  { kind = 0; nlinks = 0; size = 0; zones = Array.make (direct_zones + 2) 0 }

let inode_block t ino = t.shape.inode_table_first + (ino / inodes_per_block)
let inode_offset ino = ino mod inodes_per_block * inode_bytes

let read_inode t ino =
  let data = read_block t (inode_block t ino) in
  let off = inode_offset ino in
  let i = fresh_inode () in
  i.kind <- Codec.get_u16 data off;
  i.nlinks <- Codec.get_u16 data (off + 2);
  i.size <- Codec.get_u32 data (off + 4);
  for z = 0 to direct_zones + 1 do
    i.zones.(z) <- Codec.get_u32 data (off + 8 + (z * 4))
  done;
  i

let write_inode t ino (i : inode) =
  let blk = inode_block t ino in
  let data = read_block t blk in
  let off = inode_offset ino in
  Codec.set_u16 data off i.kind;
  Codec.set_u16 data (off + 2) i.nlinks;
  Codec.set_u32 data (off + 4) i.size;
  for z = 0 to direct_zones + 1 do
    Codec.set_u32 data (off + 8 + (z * 4)) i.zones.(z)
  done;
  write_meta t blk data

let alloc_inode t =
  match bitmap_alloc t.inode_bitmap t.shape.inode_count with
  | None -> raise No_space
  | Some ino ->
    bitmap_update t ~bitmap:t.inode_bitmap
      ~first_block:t.shape.inode_bitmap_first ino true;
    ino

let free_inode t ino =
  bitmap_update t ~bitmap:t.inode_bitmap
    ~first_block:t.shape.inode_bitmap_first ino false

(* ------------------------------------------------------------------ *)
(* Zones                                                               *)

let alloc_zone t =
  match bitmap_alloc t.zone_bitmap t.shape.data_zones with
  | None -> raise No_space
  | Some z ->
    bitmap_update t ~bitmap:t.zone_bitmap ~first_block:t.shape.zone_bitmap_first
      z true;
    t.shape.first_data + z

let free_zone t blk =
  let z = blk - t.shape.first_data in
  bitmap_update t ~bitmap:t.zone_bitmap ~first_block:t.shape.zone_bitmap_first z
    false

(* Map a file block index to its disk block, optionally allocating the
   zone (and any indirect blocks) on the way.  Returns 0 when the block
   does not exist and [alloc] is false. *)
let rec zone_of t (i : inode) ~ino ~index ~alloc =
  if index < direct_zones then begin
    if i.zones.(index) = 0 && alloc then begin
      i.zones.(index) <- alloc_zone t;
      write_inode t ino i
    end;
    i.zones.(index)
  end
  else if index < direct_zones + ptrs_per_block then
    indirect_lookup t i ~ino ~slot:direct_zones
      ~offset:(index - direct_zones) ~alloc
  else begin
    let index = index - direct_zones - ptrs_per_block in
    if index >= ptrs_per_block * ptrs_per_block then
      invalid_arg "Classic: file too large";
    (* double indirect: first resolve the inner indirect block *)
    let outer = indirect_block t i ~ino ~slot:(direct_zones + 1) ~alloc in
    if outer = 0 then 0
    else begin
      let data = read_block t outer in
      let inner_idx = index / ptrs_per_block in
      let inner = Codec.get_u32 data (inner_idx * 4) in
      let inner =
        if inner = 0 && alloc then begin
          let z = alloc_zone t in
          Codec.set_u32 data (inner_idx * 4) z;
          write_meta t outer data;
          z
        end
        else inner
      in
      if inner = 0 then 0
      else begin
        let leaf = read_block t inner in
        let off = index mod ptrs_per_block * 4 in
        let z = Codec.get_u32 leaf off in
        if z = 0 && alloc then begin
          let z = alloc_zone t in
          Codec.set_u32 leaf off z;
          write_meta t inner leaf;
          z
        end
        else z
      end
    end
  end

and indirect_block t (i : inode) ~ino ~slot ~alloc =
  if i.zones.(slot) = 0 && alloc then begin
    i.zones.(slot) <- alloc_zone t;
    write_meta t i.zones.(slot) (Bytes.make bb '\000');
    write_inode t ino i
  end;
  i.zones.(slot)

and indirect_lookup t (i : inode) ~ino ~slot ~offset ~alloc =
  let blk = indirect_block t i ~ino ~slot ~alloc in
  if blk = 0 then 0
  else begin
    let data = read_block t blk in
    let z = Codec.get_u32 data (offset * 4) in
    if z = 0 && alloc then begin
      let z = alloc_zone t in
      Codec.set_u32 data (offset * 4) z;
      write_meta t blk data;
      z
    end
    else z
  end

let iter_zones t (i : inode) f =
  let blocks = (i.size + bb - 1) / bb in
  for index = 0 to blocks - 1 do
    let z = zone_of t i ~ino:0 ~index ~alloc:false in
    if z <> 0 then f z
  done;
  (* indirect blocks themselves *)
  if i.zones.(direct_zones) <> 0 then f i.zones.(direct_zones);
  if i.zones.(direct_zones + 1) <> 0 then begin
    let outer = i.zones.(direct_zones + 1) in
    let data = read_block t outer in
    for k = 0 to ptrs_per_block - 1 do
      let inner = Codec.get_u32 data (k * 4) in
      if inner <> 0 then f inner
    done;
    f outer
  end

(* ------------------------------------------------------------------ *)
(* File I/O                                                            *)

let file_read t (i : inode) ~off ~len =
  let len = max 0 (min len (i.size - off)) in
  let out = Bytes.make len '\000' in
  let pos = ref off in
  while !pos < off + len do
    let index = !pos / bb in
    let boff = !pos mod bb in
    let n = min (bb - boff) (off + len - !pos) in
    let z = zone_of t i ~ino:0 ~index ~alloc:false in
    if z <> 0 then Bytes.blit (read_block t z) boff out (!pos - off) n;
    pos := !pos + n
  done;
  out

let file_write t (i : inode) ~ino ~off data =
  let len = Bytes.length data in
  let pos = ref 0 in
  while !pos < len do
    let abs = off + !pos in
    let index = abs / bb in
    let boff = abs mod bb in
    let n = min (bb - boff) (len - !pos) in
    let z = zone_of t i ~ino ~index ~alloc:true in
    let blk = if n = bb then Bytes.sub data !pos bb else read_block t z in
    if n <> bb then Bytes.blit data !pos blk boff n;
    write_data t z blk;
    pos := !pos + n
  done;
  if off + len > i.size then begin
    i.size <- off + len;
    write_inode t ino i
  end

(* ------------------------------------------------------------------ *)
(* The root directory                                                  *)

let dir_entries t =
  let root = read_inode t root_ino in
  let data = file_read t root ~off:0 ~len:root.size in
  let acc = ref [] in
  let off = ref 0 in
  while !off + Layout.dirent_bytes <= Bytes.length data do
    (match Dirent.read data ~off:!off with
    | Some e -> acc := (e, !off) :: !acc
    | None -> ());
    off := !off + Layout.dirent_bytes
  done;
  List.rev !acc

let dir_lookup t name =
  List.find_opt (fun ((e : Dirent.t), _) -> e.Dirent.name = name) (dir_entries t)

let dir_add t name ino =
  let root = read_inode t root_ino in
  (* first hole, else append *)
  let data = file_read t root ~off:0 ~len:root.size in
  let rec hole off =
    if off + Layout.dirent_bytes > Bytes.length data then root.size
    else if Dirent.read data ~off = None then off
    else hole (off + Layout.dirent_bytes)
  in
  let off = hole 0 in
  let buf = Bytes.make Layout.dirent_bytes '\000' in
  Dirent.write buf ~off:0 { Dirent.ino; name };
  file_write t root ~ino:root_ino ~off buf

let dir_remove t name =
  match dir_lookup t name with
  | None -> raise (File_not_found name)
  | Some (_, off) ->
    let root = read_inode t root_ino in
    file_write t root ~ino:root_ino ~off (Bytes.make Layout.dirent_bytes '\000')

(* ------------------------------------------------------------------ *)
(* Formatting and mounting                                             *)

let superblock_layout ~total_blocks ~inode_count =
  let inode_bitmap_blocks = ((inode_count + bits_per_block - 1) / bits_per_block) in
  let inode_table_blocks =
    (inode_count + inodes_per_block - 1) / inodes_per_block
  in
  (* the zone bitmap must cover what remains after all fixed areas; one
     extra block of slack keeps the arithmetic simple *)
  let fixed_guess = 1 + inode_bitmap_blocks + inode_table_blocks in
  let zone_bitmap_blocks =
    ((total_blocks - fixed_guess + bits_per_block - 1) / bits_per_block) + 1
  in
  let inode_bitmap_first = 1 in
  let zone_bitmap_first = inode_bitmap_first + inode_bitmap_blocks in
  let inode_table_first = zone_bitmap_first + zone_bitmap_blocks in
  let first_data = inode_table_first + inode_table_blocks in
  {
    inode_count;
    inode_bitmap_first;
    inode_bitmap_blocks;
    zone_bitmap_first;
    zone_bitmap_blocks;
    inode_table_first;
    inode_table_blocks;
    first_data;
    data_zones = total_blocks - first_data;
  }

let encode_superblock shape =
  let b = Bytes.make bb '\000' in
  Codec.set_u32 b 0 magic;
  Codec.set_u32 b 4 shape.inode_count;
  Codec.set_u32 b 8 shape.first_data;
  Codec.set_u32 b 12 shape.data_zones;
  b

let make disk shape =
  {
    disk;
    shape;
    inode_bitmap =
      Bytes.make (shape.inode_bitmap_blocks * bb) '\000';
    zone_bitmap = Bytes.make (shape.zone_bitmap_blocks * bb) '\000';
    cache = Lru.create ~capacity:256;
    dirty = Hashtbl.create 64;
  }

let mkfs ?(inode_count = 4096) disk =
  let geom = Disk.geometry disk in
  let total_blocks = Geometry.total_bytes geom / bb in
  let shape = superblock_layout ~total_blocks ~inode_count in
  let t = make disk shape in
  Disk.write disk ~offset:0 (encode_superblock shape);
  (* zero the bitmap and inode-table areas (the disk may be reused) *)
  let zero = Bytes.make bb '\000' in
  for b = shape.inode_bitmap_first to shape.first_data - 1 do
    Disk.write disk ~offset:(b * bb) zero
  done;
  (* inodes 0 (reserved) and 1 (root) *)
  bitmap_update t ~bitmap:t.inode_bitmap ~first_block:shape.inode_bitmap_first 0
    true;
  bitmap_update t ~bitmap:t.inode_bitmap ~first_block:shape.inode_bitmap_first
    root_ino true;
  let root = fresh_inode () in
  root.kind <- 2;
  root.nlinks <- 1;
  write_inode t root_ino root;
  t

let mount disk =
  let geom = Disk.geometry disk in
  let total_blocks = Geometry.total_bytes geom / bb in
  let sb = Disk.read disk ~offset:0 ~length:bb in
  if Codec.get_u32 sb 0 <> magic then
    invalid_arg "Classic.mount: no classic-Minix superblock";
  let inode_count = Codec.get_u32 sb 4 in
  let shape = superblock_layout ~total_blocks ~inode_count in
  let t = make disk shape in
  for b = 0 to shape.inode_bitmap_blocks - 1 do
    Bytes.blit
      (Disk.read disk ~offset:((shape.inode_bitmap_first + b) * bb) ~length:bb)
      0 t.inode_bitmap (b * bb) bb
  done;
  for b = 0 to shape.zone_bitmap_blocks - 1 do
    Bytes.blit
      (Disk.read disk ~offset:((shape.zone_bitmap_first + b) * bb) ~length:bb)
      0 t.zone_bitmap (b * bb) bb
  done;
  t

(* ------------------------------------------------------------------ *)
(* Operations                                                          *)

let resolve t name =
  match dir_lookup t name with
  | None -> raise (File_not_found name)
  | Some ((e : Dirent.t), _) -> e.Dirent.ino

let create t name =
  if not (Dirent.valid_name name) then invalid_arg "Classic.create: bad name";
  if dir_lookup t name <> None then raise (File_exists name);
  let ino = alloc_inode t in
  let i = fresh_inode () in
  i.kind <- 1;
  i.nlinks <- 1;
  write_inode t ino i;
  dir_add t name ino

let unlink t name =
  let ino = resolve t name in
  let i = read_inode t ino in
  dir_remove t name;
  iter_zones t i (fun z -> free_zone t z);
  write_inode t ino (fresh_inode ());
  free_inode t ino

let write_file t name ~off data =
  let ino = resolve t name in
  let i = read_inode t ino in
  file_write t i ~ino ~off data

let read_file t name ~off ~len =
  let ino = resolve t name in
  file_read t (read_inode t ino) ~off ~len

type stat = { size : int; blocks : int }

let stat t name =
  let i = read_inode t (resolve t name) in
  { size = i.size; blocks = (i.size + bb - 1) / bb }

let list t =
  List.map (fun ((e : Dirent.t), _) -> e.Dirent.name) (dir_entries t)
  |> List.sort String.compare
