(** The conventional Minix file system, directly on the raw disk.

    This is the baseline the paper's background quotes (§2, §5.2): the
    original Logical Disk work measured the "Minix file system by
    itself" at ~13 % of the disk bandwidth on writes, against
    MinixLLD's 85 %.  It is everything LLD is not:

    - update-in-place: a block lives at a fixed disk address; writing it
      seeks there;
    - free space tracked in inode and zone {e bitmaps} at the front of
      the partition;
    - file blocks addressed by per-inode {e zone pointers} (7 direct,
      one indirect, one double-indirect);
    - meta-data updates (bitmaps, inodes, indirect blocks, directory
      blocks) are {e synchronous} — each is written to the disk
      immediately, in update order, which is how conventional file
      systems kept crash damage bounded (paper §3, §6 on FFS);
    - file data goes through a small write-back cache.

    The namespace is a single root directory — enough for the
    bandwidth-context experiment (W0 in DESIGN.md §4); the full
    hierarchical client of this repository is {!Lld_minixfs.Fs}. *)

type t

exception File_not_found of string
exception File_exists of string
exception No_space

val mkfs : ?inode_count:int -> Lld_disk.Disk.t -> t
(** Format: superblock, bitmaps, inode table, then the data zones. *)

val mount : Lld_disk.Disk.t -> t
(** Raises [Invalid_argument] when the superblock is not recognisable. *)

val create : t -> string -> unit
val unlink : t -> string -> unit
val write_file : t -> string -> off:int -> bytes -> unit
val read_file : t -> string -> off:int -> len:int -> bytes

type stat = { size : int; blocks : int }

val stat : t -> string -> stat
val list : t -> string list

val flush : t -> unit
(** Write back all dirty data blocks (meta-data is already on disk). *)

val disk : t -> Lld_disk.Disk.t
