lib/disk/geometry.ml:
