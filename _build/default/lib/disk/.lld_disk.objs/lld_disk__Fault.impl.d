lib/disk/fault.ml: List
