lib/disk/geometry.mli:
