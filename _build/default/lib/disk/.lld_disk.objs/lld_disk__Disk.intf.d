lib/disk/disk.mli: Fault Geometry Lld_sim Timing
