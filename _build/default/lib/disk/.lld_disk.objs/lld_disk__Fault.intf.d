lib/disk/fault.mli:
