lib/disk/timing.ml: Geometry
