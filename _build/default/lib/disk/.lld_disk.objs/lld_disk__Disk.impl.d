lib/disk/disk.ml: Bytes Fault Geometry Lld_sim Timing
