lib/disk/timing.mli: Geometry
