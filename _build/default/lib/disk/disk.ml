type counters = {
  writes : int;
  reads : int;
  bytes_written : int;
  bytes_read : int;
}

type t = {
  geom : Geometry.t;
  timing : Timing.t;
  fault : Fault.t;
  clock : Lld_sim.Clock.t;
  store : bytes;
  mutable last_end : int; (* byte position after the previous request; -1 = cold *)
  mutable writes : int;
  mutable reads : int;
  mutable bytes_written : int;
  mutable bytes_read : int;
}

let create ?(timing = Timing.hp_c3010) ?fault ~clock geom =
  let fault = match fault with Some f -> f | None -> Fault.none () in
  {
    geom;
    timing;
    fault;
    clock;
    store = Bytes.make (Geometry.total_bytes geom) '\000';
    last_end = -1;
    writes = 0;
    reads = 0;
    bytes_written = 0;
    bytes_read = 0;
  }

let geometry t = t.geom
let fault t = t.fault
let clock t = t.clock

let check_range t ~offset ~length =
  if offset < 0 || length < 0 || offset + length > Bytes.length t.store then
    invalid_arg "Disk: request outside the partition"

let charge t ~offset ~length =
  let ns =
    Timing.request_ns t.timing t.geom ~last_end:t.last_end ~offset ~length
  in
  Lld_sim.Clock.charge t.clock Lld_sim.Clock.Io ns;
  t.last_end <- offset + length

let write t ~offset data =
  let length = Bytes.length data in
  check_range t ~offset ~length;
  match Fault.on_write t.fault ~length with
  | `Ok ->
    charge t ~offset ~length;
    Bytes.blit data 0 t.store offset length;
    t.writes <- t.writes + 1;
    t.bytes_written <- t.bytes_written + length
  | `Torn keep ->
    (* the prefix reached the medium before power was lost *)
    charge t ~offset ~length:keep;
    Bytes.blit data 0 t.store offset keep;
    t.writes <- t.writes + 1;
    t.bytes_written <- t.bytes_written + keep;
    raise Fault.Crashed

let read t ~offset ~length =
  check_range t ~offset ~length;
  if Fault.crashed t.fault then raise Fault.Crashed;
  Fault.check_read t.fault ~offset ~length;
  charge t ~offset ~length;
  t.reads <- t.reads + 1;
  t.bytes_read <- t.bytes_read + length;
  Bytes.sub t.store offset length

let counters t =
  {
    writes = t.writes;
    reads = t.reads;
    bytes_written = t.bytes_written;
    bytes_read = t.bytes_read;
  }

let reset_counters t =
  t.writes <- 0;
  t.reads <- 0;
  t.bytes_written <- 0;
  t.bytes_read <- 0
