(** The simulated block device.

    An in-memory byte store standing in for the paper's HP C3010
    partition accessed through the SunOS raw-disk interface.  Every
    request charges mechanical latency from {!Timing} to the shared
    virtual {!Lld_sim.Clock}, and passes through the {!Fault} plan, so
    crash and media-failure behaviour is deterministic. *)

type t

val create :
  ?timing:Timing.t -> ?fault:Fault.t -> clock:Lld_sim.Clock.t -> Geometry.t -> t
(** A zero-filled partition. Default timing is {!Timing.hp_c3010};
    default fault plan is {!Fault.none}. *)

val geometry : t -> Geometry.t
val fault : t -> Fault.t
val clock : t -> Lld_sim.Clock.t

val write : t -> offset:int -> bytes -> unit
(** Write the bytes at the byte offset.  Raises [Fault.Crashed] at a
    scheduled crash point; on a torn write the scheduled prefix reaches
    the medium before the exception. Raises [Invalid_argument] when the
    range exceeds the partition. *)

val read : t -> offset:int -> length:int -> bytes
(** Raises [Fault.Media_error] when the range overlaps an injected media
    failure; raises [Fault.Crashed] while the device is crashed. *)

(** {2 Statistics} *)

type counters = {
  writes : int;
  reads : int;
  bytes_written : int;
  bytes_read : int;
}

val counters : t -> counters
val reset_counters : t -> unit
