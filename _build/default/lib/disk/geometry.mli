(** Partition geometry shared by the disk and the logical disk system.

    The paper's configuration is a 400 MB partition of 4 KB blocks
    written in 0.5 MB segments (100,000 blocks, 800 segments). *)

type t = private {
  block_bytes : int;  (** data block size (paper: 4096) *)
  segment_bytes : int;  (** segment size (paper: 524288) *)
  num_segments : int;  (** segments in the partition *)
  cylinder_bytes : int;  (** bytes per cylinder, for the seek model *)
}

val v :
  ?block_bytes:int ->
  ?segment_bytes:int ->
  ?cylinder_bytes:int ->
  num_segments:int ->
  unit ->
  t
(** Constructor with paper defaults; validates that the segment size is
    a multiple of the block size. *)

val paper : t
(** The paper's 400 MB partition: 800 segments of 0.5 MB, 4 KB blocks. *)

val small : t
(** A small 16 MB partition for unit tests (32 segments). *)

val blocks_per_segment : t -> int
val total_blocks : t -> int
val total_bytes : t -> int

val segment_offset : t -> int -> int
(** Byte offset of segment [i] within the partition. *)

val cylinder_of_offset : t -> int -> int
(** Cylinder index containing a byte offset (for the seek model). *)
