type t = {
  block_bytes : int;
  segment_bytes : int;
  num_segments : int;
  cylinder_bytes : int;
}

let v ?(block_bytes = 4096) ?(segment_bytes = 512 * 1024)
    ?(cylinder_bytes = 1024 * 1024) ~num_segments () =
  if block_bytes <= 0 || segment_bytes <= 0 || num_segments <= 0 || cylinder_bytes <= 0
  then invalid_arg "Geometry.v: sizes must be positive";
  if segment_bytes mod block_bytes <> 0 then
    invalid_arg "Geometry.v: segment size must be a multiple of the block size";
  { block_bytes; segment_bytes; num_segments; cylinder_bytes }

let paper = v ~num_segments:800 ()
let small = v ~num_segments:32 ()

let blocks_per_segment t = t.segment_bytes / t.block_bytes
let total_blocks t = blocks_per_segment t * t.num_segments
let total_bytes t = t.segment_bytes * t.num_segments

let segment_offset t i =
  if i < 0 || i >= t.num_segments then invalid_arg "Geometry.segment_offset";
  i * t.segment_bytes

let cylinder_of_offset t off = off / t.cylinder_bytes
