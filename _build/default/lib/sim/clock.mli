(** A virtual clock measuring simulated nanoseconds.

    All time in the reproduction is virtual: the disk model charges
    mechanical latencies and the cost model charges 1996-era CPU time to
    the same clock, so reported throughput has the CPU/disk balance of
    the paper's SPARC-5/70 testbed rather than of the machine running
    the simulation (see DESIGN.md §2). *)

type t

(** Accounting category for a charge; totals are queryable per
    category. *)
type category =
  | Cpu  (** meta-data manipulation, copies — the paper's "run-time overhead" *)
  | Io  (** simulated disk mechanics: seek, rotation, transfer *)

val create : unit -> t

val now_ns : t -> int
(** Total virtual nanoseconds elapsed since creation. *)

val charge : t -> category -> int -> unit
(** [charge t cat ns] advances the clock by [ns] (which must be
    non-negative) and attributes it to [cat]. *)

val total_ns : t -> category -> int
(** Cumulative nanoseconds charged to the category. *)

val reset : t -> unit
(** Zero the clock and all category totals. *)

val pp : Format.formatter -> t -> unit
