type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
}

let summarize = function
  | [] -> invalid_arg "Stats.summarize: empty sample"
  | xs ->
    let n = List.length xs in
    let sum = List.fold_left ( +. ) 0. xs in
    let mean = sum /. float_of_int n in
    let sq = List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. xs in
    let stddev = if n > 1 then sqrt (sq /. float_of_int (n - 1)) else 0. in
    {
      count = n;
      mean;
      stddev;
      min = List.fold_left min infinity xs;
      max = List.fold_left max neg_infinity xs;
    }

let percentile xs p =
  match xs with
  | [] -> invalid_arg "Stats.percentile: empty sample"
  | _ ->
    if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
    let sorted = List.sort compare xs in
    let a = Array.of_list sorted in
    let n = Array.length a in
    let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
    a.(max 0 (min (n - 1) (rank - 1)))

let percent_diff ~baseline v =
  if baseline = 0. then invalid_arg "Stats.percent_diff: zero baseline";
  (baseline -. v) /. baseline *. 100.

let throughput ~work ~elapsed_ns =
  if elapsed_ns <= 0 then invalid_arg "Stats.throughput: non-positive time";
  work /. (float_of_int elapsed_ns /. 1e9)
