type t = {
  op_dispatch_ns : int;
  record_lookup_ns : int;
  record_create_ns : int;
  record_transition_ns : int;
  mesh_hop_ns : int;
  pred_search_hop_ns : int;
  summary_entry_ns : int;
  link_log_append_ns : int;
  link_log_replay_ns : int;
  aru_begin_ns : int;
  aru_commit_ns : int;
  block_copy_ns : int;
  block_read_cpu_ns : int;
  version_search_ns : int;
  fs_op_ns : int;
}

(* Calibration anchors (DESIGN.md §5.4):
   - Begin+End of an empty ARU must cost ~78.47 us minus its share of
     commit-record I/O (~11 us), i.e. ~67 us CPU:
     2*op_dispatch + aru_begin + aru_commit + summary_entry = 67.0 us.
   - block_copy: a 4 KB memcpy at ~60 MB/s on the SPARC-5/70.
   - the remaining constants are a few hundred to a few thousand cycles
     at 14.3 ns/cycle, sized so the small-file experiments land in the
     paper's 4-7 % (create) and 18-25 % (delete) overhead bands. *)
let sparc5_70 =
  {
    op_dispatch_ns = 500;
    record_lookup_ns = 1_500;
    record_create_ns = 15_000;
    record_transition_ns = 10_000;
    mesh_hop_ns = 300;
    pred_search_hop_ns = 4_000;
    summary_entry_ns = 5_000;
    link_log_append_ns = 2_000;
    link_log_replay_ns = 10_000;
    aru_begin_ns = 10_000;
    aru_commit_ns = 57_000;
    block_copy_ns = 65_000;
    block_read_cpu_ns = 10_000;
    version_search_ns = 400;
    fs_op_ns = 600_000;
  }

let free =
  {
    op_dispatch_ns = 0;
    record_lookup_ns = 0;
    record_create_ns = 0;
    record_transition_ns = 0;
    mesh_hop_ns = 0;
    pred_search_hop_ns = 0;
    summary_entry_ns = 0;
    link_log_append_ns = 0;
    link_log_replay_ns = 0;
    aru_begin_ns = 0;
    aru_commit_ns = 0;
    block_copy_ns = 0;
    block_read_cpu_ns = 0;
    version_search_ns = 0;
    fs_op_ns = 0;
  }
