lib/sim/cost.mli:
