lib/sim/cost.ml:
