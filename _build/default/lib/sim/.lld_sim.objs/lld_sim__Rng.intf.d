lib/sim/rng.mli:
