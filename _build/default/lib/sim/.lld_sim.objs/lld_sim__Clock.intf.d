lib/sim/clock.mli: Format
