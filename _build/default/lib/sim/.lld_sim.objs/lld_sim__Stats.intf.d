lib/sim/stats.mli:
