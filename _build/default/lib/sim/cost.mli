(** CPU cost model for LLD meta-data primitives.

    The paper's overheads (§5.3) come from counting extra meta-data work
    in the concurrent-ARU implementation: alternative-record creation
    and state transitions, mesh traversal, the per-ARU list-operation
    log and its replay at commit, and predecessor searches.  Each such
    primitive is charged a fixed number of virtual nanoseconds,
    calibrated against the 70 MHz SPARC-5/70 (see DESIGN.md §5.4; the
    anchor is the measured 78.47 µs Begin/End-ARU latency). *)

type t = {
  op_dispatch_ns : int;  (** fixed cost of entering any LD call *)
  record_lookup_ns : int;  (** block-number-map / list-table lookup *)
  record_create_ns : int;  (** allocate and initialise an alternative record *)
  record_transition_ns : int;
      (** move a record between states (shadow→committed, committed→persistent) *)
  mesh_hop_ns : int;  (** follow one same-id / same-state link *)
  pred_search_hop_ns : int;  (** one hop of a predecessor search along a list *)
  summary_entry_ns : int;  (** encode and append one segment-summary entry *)
  link_log_append_ns : int;  (** append one entry to an ARU's list-operation log *)
  link_log_replay_ns : int;  (** fixed per-entry cost of replaying the log at commit *)
  aru_begin_ns : int;  (** BeginARU: allocate and register the ARU record *)
  aru_commit_ns : int;  (** EndARU fixed part: merge bookkeeping + commit record *)
  block_copy_ns : int;  (** copy one 4 KB block (into a segment / shadow data) *)
  block_read_cpu_ns : int;  (** per-block CPU on the read path (cache lookup etc.) *)
  version_search_ns : int;
      (** per-operation version search in concurrent mode; the residual
          always-on cost of supporting concurrent ARUs (paper's 2.9 %
          write1 difference) *)
  fs_op_ns : int;
      (** Minix file-system CPU per operation (path resolution, dirent
          manipulation) — identical across LLD variants, so it only
          sets the baseline the relative overheads are measured
          against *)
}

val sparc5_70 : t
(** Default calibration targeting the paper's testbed. *)

val free : t
(** All-zero model: cost charging disabled.  Used by correctness tests
    to demonstrate that the cost model never influences semantics. *)
