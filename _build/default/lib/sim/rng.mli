(** Deterministic pseudo-random numbers (splitmix64).

    Every randomised workload and property test seeds its own generator
    so experiments and failures reproduce exactly. *)

type t

val create : seed:int -> t

val next : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] returns a uniform value in [\[0, bound)]. [bound] must
    be positive. *)

val bool : t -> bool

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val split : t -> t
(** Derive an independent generator (for nested deterministic streams). *)
