(** Small numeric summaries used by the experiment harness. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
}

val summarize : float list -> summary
(** Summary of a non-empty sample; raises [Invalid_argument] on []. *)

val percentile : float list -> float -> float
(** [percentile xs p] for [p] in [\[0,100\]], nearest-rank on the sorted
    sample. Raises [Invalid_argument] on []. *)

val percent_diff : baseline:float -> float -> float
(** [(baseline - v) /. baseline * 100.]: how much slower [v] is than the
    baseline when both are throughputs (positive = [v] is worse). *)

val throughput : work:float -> elapsed_ns:int -> float
(** Units of work per second of virtual time. *)
