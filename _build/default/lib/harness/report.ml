let widths header rows =
  let n = List.length header in
  let w = Array.make n 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> if i < n then w.(i) <- max w.(i) (String.length cell)) row)
    (header :: rows);
  w

let pad width s = s ^ String.make (max 0 (width - String.length s)) ' '

let table ppf ~title ~header rows =
  let w = widths header rows in
  let total = Array.fold_left ( + ) 0 w + (2 * (Array.length w - 1)) in
  Format.fprintf ppf "@.%s@.%s@." title (String.make (max total (String.length title)) '-');
  let print_row row =
    let cells = List.mapi (fun i cell -> pad w.(i) cell) row in
    Format.fprintf ppf "%s@." (String.concat "  " cells)
  in
  print_row header;
  List.iter print_row rows

let pct ~baseline v =
  if baseline = 0. then "n/a"
  else Printf.sprintf "%+.1f%%" ((baseline -. v) /. baseline *. 100.)

let f1 v = Printf.sprintf "%.1f" v
let f2 v = Printf.sprintf "%.2f" v
