lib/harness/experiment.ml: Array Bytes Format Fun List Lld_core Lld_disk Lld_jld Lld_minixdisk Lld_minixfs Lld_sim Lld_workload Printf Report
