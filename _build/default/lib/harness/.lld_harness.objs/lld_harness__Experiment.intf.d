lib/harness/experiment.mli: Format Lld_core Lld_disk Lld_workload
