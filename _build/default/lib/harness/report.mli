(** Plain-text table rendering for the experiment harness. *)

val table :
  Format.formatter ->
  title:string ->
  header:string list ->
  string list list ->
  unit
(** Render an aligned table with a title rule. *)

val pct : baseline:float -> float -> string
(** Percent difference of a throughput against the baseline, signed:
    ["+7.2%"] means 7.2 % slower than the baseline. *)

val f1 : float -> string
(** One decimal. *)

val f2 : float -> string
(** Two decimals. *)
