(** A growable array (amortised O(1) append). *)

type 'a t

val create : unit -> 'a t

val of_list : 'a list -> 'a t

val length : 'a t -> int

val get : 'a t -> int -> 'a
(** Raises [Invalid_argument] out of bounds. *)

val set : 'a t -> int -> 'a -> unit

val push : 'a t -> 'a -> unit

val last : 'a t -> 'a option

val truncate : 'a t -> int -> unit
(** [truncate t n] drops elements from index [n] on; no-op when [n >=
    length t].  Raises [Invalid_argument] on negative [n]. *)

val to_list : 'a t -> 'a list

val iter : ('a -> unit) -> 'a t -> unit
