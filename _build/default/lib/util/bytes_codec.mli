(** Little-endian binary encoding helpers used by segment summaries and
    the file-system on-disk formats. *)

exception Truncated
(** Raised by {!Reader} operations that run past the end of the input. *)

module Writer : sig
  type t
  (** A growable byte buffer with little-endian append operations. *)

  val create : ?capacity:int -> unit -> t

  val length : t -> int
  (** Number of bytes written so far. *)

  val u8 : t -> int -> unit
  (** [u8 w v] appends the low 8 bits of [v]. *)

  val u16 : t -> int -> unit
  val u32 : t -> int -> unit
  val u64 : t -> int64 -> unit

  val raw : t -> bytes -> unit
  (** Append the bytes verbatim, without a length prefix. *)

  val string : t -> string -> unit
  (** Append a [u16] length prefix followed by the string bytes. *)

  val contents : t -> bytes
  (** Snapshot of everything written so far. *)
end

module Reader : sig
  type t
  (** A cursor over a byte range; all reads advance the cursor and raise
      {!Truncated} when the range is exhausted. *)

  val of_bytes : ?pos:int -> ?len:int -> bytes -> t

  val pos : t -> int
  (** Absolute position of the cursor within the underlying bytes. *)

  val remaining : t -> int

  val u8 : t -> int
  val u16 : t -> int
  val u32 : t -> int
  val u64 : t -> int64

  val raw : t -> int -> bytes
  (** [raw r n] reads the next [n] bytes. *)

  val string : t -> string
  (** Read a [u16] length prefix followed by that many bytes. *)
end

val fnv1a : ?pos:int -> ?len:int -> bytes -> int64
(** FNV-1a hash of the byte range. *)

val hash64 : ?pos:int -> ?len:int -> bytes -> int64
(** FNV-1a over 64-bit words (with a byte-wise tail): ~8x faster than
    {!fnv1a} on large ranges.  Used as the segment and checkpoint
    checksum. *)

(* Fixed-offset accessors for in-place structures (e.g. inode blocks). *)

val get_u16 : bytes -> int -> int
val set_u16 : bytes -> int -> int -> unit
val get_u32 : bytes -> int -> int
val set_u32 : bytes -> int -> int -> unit
