lib/util/bytes_codec.ml: Buffer Bytes Char Int64 String
