lib/util/vec.mli:
