lib/util/lru.mli:
