type 'a t = {
  mutable data : 'a array;
  mutable length : int;
}

let create () = { data = [||]; length = 0 }

let length t = t.length

let check t i =
  if i < 0 || i >= t.length then invalid_arg "Vec: index out of bounds"

let get t i =
  check t i;
  t.data.(i)

let set t i v =
  check t i;
  t.data.(i) <- v

let grow t =
  let cap = max 8 (2 * Array.length t.data) in
  let data = Array.make cap t.data.(0) in
  Array.blit t.data 0 data 0 t.length;
  t.data <- data

let push t v =
  if t.length = Array.length t.data then
    if t.length = 0 then t.data <- Array.make 8 v else grow t;
  t.data.(t.length) <- v;
  t.length <- t.length + 1

let of_list l =
  let t = create () in
  List.iter (push t) l;
  t

let last t = if t.length = 0 then None else Some t.data.(t.length - 1)

let truncate t n =
  if n < 0 then invalid_arg "Vec.truncate: negative length";
  if n < t.length then t.length <- n

let to_list t = Array.to_list (Array.sub t.data 0 t.length)

let iter f t =
  for i = 0 to t.length - 1 do
    f t.data.(i)
  done
