exception Truncated

module Writer = struct
  type t = Buffer.t

  let create ?(capacity = 256) () = Buffer.create capacity
  let length = Buffer.length
  let u8 t v = Buffer.add_char t (Char.chr (v land 0xff))

  let u16 t v =
    u8 t v;
    u8 t (v lsr 8)

  let u32 t v =
    u16 t (v land 0xffff);
    u16 t ((v lsr 16) land 0xffff)

  let u64 t v =
    u32 t (Int64.to_int (Int64.logand v 0xffffffffL));
    u32 t (Int64.to_int (Int64.logand (Int64.shift_right_logical v 32) 0xffffffffL))

  let raw t b = Buffer.add_bytes t b
  let string t s =
    u16 t (String.length s);
    Buffer.add_string t s

  let contents t = Buffer.to_bytes t
end

module Reader = struct
  type t = { buf : bytes; mutable pos : int; limit : int }

  let of_bytes ?(pos = 0) ?len buf =
    let limit = match len with None -> Bytes.length buf | Some l -> pos + l in
    if pos < 0 || limit > Bytes.length buf then invalid_arg "Reader.of_bytes";
    { buf; pos; limit }

  let pos t = t.pos
  let remaining t = t.limit - t.pos

  let need t n = if t.limit - t.pos < n then raise Truncated

  let u8 t =
    need t 1;
    let v = Char.code (Bytes.get t.buf t.pos) in
    t.pos <- t.pos + 1;
    v

  let u16 t =
    let lo = u8 t in
    let hi = u8 t in
    lo lor (hi lsl 8)

  let u32 t =
    let lo = u16 t in
    let hi = u16 t in
    lo lor (hi lsl 16)

  let u64 t =
    let lo = u32 t in
    let hi = u32 t in
    Int64.logor (Int64.of_int lo)
      (Int64.shift_left (Int64.of_int hi) 32)

  let raw t n =
    need t n;
    let b = Bytes.sub t.buf t.pos n in
    t.pos <- t.pos + n;
    b

  let string t =
    let n = u16 t in
    Bytes.to_string (raw t n)
end

let fnv1a ?(pos = 0) ?len buf =
  let len = match len with None -> Bytes.length buf - pos | Some l -> l in
  let h = ref 0xcbf29ce484222325L in
  for i = pos to pos + len - 1 do
    h := Int64.logxor !h (Int64.of_int (Char.code (Bytes.get buf i)));
    h := Int64.mul !h 0x100000001b3L
  done;
  !h

let get_u16 b off = Char.code (Bytes.get b off) lor (Char.code (Bytes.get b (off + 1)) lsl 8)

let set_u16 b off v =
  Bytes.set b off (Char.chr (v land 0xff));
  Bytes.set b (off + 1) (Char.chr ((v lsr 8) land 0xff))

let get_u32 b off = get_u16 b off lor (get_u16 b (off + 2) lsl 16)

let set_u32 b off v =
  set_u16 b off (v land 0xffff);
  set_u16 b (off + 2) ((v lsr 16) land 0xffff)

let hash64 ?(pos = 0) ?len buf =
  let len = match len with None -> Bytes.length buf - pos | Some l -> l in
  let h = ref 0xcbf29ce484222325L in
  let words = len / 8 in
  for i = 0 to words - 1 do
    h := Int64.logxor !h (Bytes.get_int64_le buf (pos + (i * 8)));
    h := Int64.mul !h 0x100000001b3L
  done;
  for i = pos + (words * 8) to pos + len - 1 do
    h := Int64.logxor !h (Int64.of_int (Char.code (Bytes.get buf i)));
    h := Int64.mul !h 0x100000001b3L
  done;
  !h
