module Clock = Lld_sim.Clock
module Geometry = Lld_disk.Geometry
module Timing = Lld_disk.Timing
module Fault = Lld_disk.Fault
module Disk = Lld_disk.Disk

let test_geometry_paper () =
  let g = Geometry.paper in
  Alcotest.(check int) "blocks/segment" 128 (Geometry.blocks_per_segment g);
  Alcotest.(check int) "total blocks" 102_400 (Geometry.total_blocks g);
  Alcotest.(check int) "total bytes" (400 * 1024 * 1024) (Geometry.total_bytes g)

let test_geometry_validation () =
  Alcotest.check_raises "segment not multiple of block"
    (Invalid_argument
       "Geometry.v: segment size must be a multiple of the block size")
    (fun () -> ignore (Geometry.v ~block_bytes:4096 ~segment_bytes:5000 ~num_segments:4 ()))

let test_geometry_offsets () =
  let g = Geometry.small in
  Alcotest.(check int) "segment 0" 0 (Geometry.segment_offset g 0);
  Alcotest.(check int) "segment 3" (3 * 512 * 1024) (Geometry.segment_offset g 3);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Geometry.segment_offset") (fun () ->
      ignore (Geometry.segment_offset g 32))

let request ~last_end ~offset ~length =
  Timing.request_ns Timing.hp_c3010 Geometry.paper ~last_end ~offset ~length

let test_timing_sequential_cheaper_than_random () =
  let seq = request ~last_end:1_000_000 ~offset:1_000_000 ~length:4096 in
  let rand = request ~last_end:1_000_000 ~offset:300_000_000 ~length:4096 in
  Alcotest.(check bool)
    (Printf.sprintf "sequential (%dns) << random (%dns)" seq rand)
    true
    (seq * 4 < rand)

let test_timing_transfer_scales () =
  let small = request ~last_end:0 ~offset:0 ~length:4096 in
  let large = request ~last_end:0 ~offset:0 ~length:(512 * 1024) in
  Alcotest.(check bool) "larger transfer takes longer" true (large > small)

let test_timing_sequential_bandwidth () =
  (* A sustained sequential segment stream must land in the ballpark of
     the paper's ~2 MB/s effective bandwidth. *)
  let seg = 512 * 1024 in
  let total = ref 0 in
  for i = 0 to 99 do
    total := !total + request ~last_end:(i * seg) ~offset:(i * seg) ~length:seg
  done;
  let mb_per_s = 100. *. 0.5 /. (float_of_int !total /. 1e9) in
  Alcotest.(check bool)
    (Printf.sprintf "sequential bandwidth %.2f MB/s in [1.5, 2.5]" mb_per_s)
    true
    (mb_per_s > 1.5 && mb_per_s < 2.5)

let test_timing_random_block_reads_slow () =
  (* Random 4 KB reads on the HP C3010 should cost ~15-20 ms. *)
  let t = request ~last_end:(-1) ~offset:123 ~length:4096 in
  Alcotest.(check bool)
    (Printf.sprintf "cold 4KB read %dns in [10ms, 25ms]" t)
    true
    (t > 10_000_000 && t < 25_000_000)

let test_timing_instant () =
  Alcotest.(check int) "instant is free" 0
    (Timing.request_ns Timing.instant Geometry.small ~last_end:(-1) ~offset:0
       ~length:4096)

let mk_disk ?fault () =
  let clock = Clock.create () in
  (clock, Disk.create ?fault ~clock Geometry.small)

let test_disk_write_read_roundtrip () =
  let _, d = mk_disk () in
  let data = Bytes.of_string "hello, disk" in
  Disk.write d ~offset:8192 data;
  let back = Disk.read d ~offset:8192 ~length:(Bytes.length data) in
  Alcotest.(check string) "roundtrip" "hello, disk" (Bytes.to_string back)

let test_disk_charges_clock () =
  let clock, d = mk_disk () in
  Disk.write d ~offset:0 (Bytes.make 4096 'x');
  Alcotest.(check bool) "io time charged" true (Clock.total_ns clock Clock.Io > 0);
  Alcotest.(check int) "no cpu charged" 0 (Clock.total_ns clock Clock.Cpu)

let test_disk_bounds () =
  let _, d = mk_disk () in
  Alcotest.check_raises "write past end"
    (Invalid_argument "Disk: request outside the partition") (fun () ->
      Disk.write d ~offset:(Geometry.total_bytes Geometry.small - 1)
        (Bytes.make 4096 'x'))

let test_disk_counters () =
  let _, d = mk_disk () in
  Disk.write d ~offset:0 (Bytes.make 100 'a');
  Disk.write d ~offset:200 (Bytes.make 50 'b');
  ignore (Disk.read d ~offset:0 ~length:10);
  let c = Disk.counters d in
  Alcotest.(check int) "writes" 2 c.Disk.writes;
  Alcotest.(check int) "reads" 1 c.Disk.reads;
  Alcotest.(check int) "bytes written" 150 c.Disk.bytes_written;
  Alcotest.(check int) "bytes read" 10 c.Disk.bytes_read;
  Disk.reset_counters d;
  Alcotest.(check int) "reset" 0 (Disk.counters d).Disk.writes

let test_fault_crash_after_writes () =
  let fault = Fault.create ~crash:(Fault.After_writes 2) () in
  let _, d = mk_disk ~fault () in
  Disk.write d ~offset:0 (Bytes.make 10 'a');
  Disk.write d ~offset:0 (Bytes.make 10 'b');
  Alcotest.check_raises "third write crashes" Fault.Crashed (fun () ->
      Disk.write d ~offset:0 (Bytes.make 10 'c'));
  (* after the crash the device stays down until recovery resets it *)
  Alcotest.check_raises "still down" Fault.Crashed (fun () ->
      ignore (Disk.read d ~offset:0 ~length:1));
  Fault.reset_after_recovery fault;
  Alcotest.(check string) "surviving content" "b"
    (Bytes.to_string (Disk.read d ~offset:0 ~length:1))

let test_fault_torn_write () =
  let fault =
    Fault.create ~crash:(Fault.During_write { write_index = 0; keep_bytes = 4 }) ()
  in
  let _, d = mk_disk ~fault () in
  Alcotest.check_raises "torn write crashes" Fault.Crashed (fun () ->
      Disk.write d ~offset:0 (Bytes.of_string "ABCDEFGH"));
  Fault.reset_after_recovery fault;
  let back = Disk.read d ~offset:0 ~length:8 in
  Alcotest.(check string) "prefix persisted" "ABCD\000\000\000\000"
    (Bytes.to_string back)

let test_fault_media_error () =
  let fault = Fault.none () in
  let _, d = mk_disk ~fault () in
  Disk.write d ~offset:0 (Bytes.make 8192 'x');
  Fault.mark_bad fault ~offset:4096 ~length:4096;
  Alcotest.(check int) "clean range readable" 4096
    (Bytes.length (Disk.read d ~offset:0 ~length:4096));
  Alcotest.check_raises "bad range raises"
    (Fault.Media_error { offset = 4096 })
    (fun () -> ignore (Disk.read d ~offset:0 ~length:8192));
  Fault.clear_bad fault;
  Alcotest.(check int) "cleared" 8192 (Bytes.length (Disk.read d ~offset:0 ~length:8192))

let test_fault_schedule_counts_from_now () =
  let fault = Fault.none () in
  let _, d = mk_disk ~fault () in
  Disk.write d ~offset:0 (Bytes.make 10 'a');
  Fault.schedule_crash fault (Fault.After_writes 1);
  Disk.write d ~offset:0 (Bytes.make 10 'b');
  Alcotest.check_raises "crashes on second write from scheduling"
    Fault.Crashed (fun () -> Disk.write d ~offset:0 (Bytes.make 10 'c'))

let () =
  Alcotest.run "lld_disk"
    [
      ( "geometry",
        [
          Alcotest.test_case "paper configuration" `Quick test_geometry_paper;
          Alcotest.test_case "validation" `Quick test_geometry_validation;
          Alcotest.test_case "segment offsets" `Quick test_geometry_offsets;
        ] );
      ( "timing",
        [
          Alcotest.test_case "sequential << random" `Quick
            test_timing_sequential_cheaper_than_random;
          Alcotest.test_case "transfer scales with size" `Quick
            test_timing_transfer_scales;
          Alcotest.test_case "sequential bandwidth ~2MB/s" `Quick
            test_timing_sequential_bandwidth;
          Alcotest.test_case "random 4KB read ~18ms" `Quick
            test_timing_random_block_reads_slow;
          Alcotest.test_case "instant model" `Quick test_timing_instant;
        ] );
      ( "disk",
        [
          Alcotest.test_case "write/read roundtrip" `Quick
            test_disk_write_read_roundtrip;
          Alcotest.test_case "charges the virtual clock" `Quick
            test_disk_charges_clock;
          Alcotest.test_case "bounds checking" `Quick test_disk_bounds;
          Alcotest.test_case "counters" `Quick test_disk_counters;
        ] );
      ( "fault",
        [
          Alcotest.test_case "crash after N writes" `Quick
            test_fault_crash_after_writes;
          Alcotest.test_case "torn write keeps prefix" `Quick
            test_fault_torn_write;
          Alcotest.test_case "media error" `Quick test_fault_media_error;
          Alcotest.test_case "schedule counts from now" `Quick
            test_fault_schedule_counts_from_now;
        ] );
    ]
