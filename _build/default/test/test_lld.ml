open Helpers

let test_new_list_and_blocks () =
  let _, lld = fresh_lld () in
  let l = new_list lld in
  Alcotest.(check bool) "list exists" true (Lld.list_exists lld l);
  Alcotest.check block_ids "empty" [] (Lld.list_blocks lld l);
  let b1 = append_block lld l in
  let b2 = append_block lld l in
  Alcotest.check block_ids "order" [ b1; b2 ] (Lld.list_blocks lld l)

let test_first_list_id_is_one () =
  let _, lld = fresh_lld () in
  let l = new_list lld in
  Alcotest.(check int) "well-known first list" 1 (Types.List_id.to_int l)

let test_insert_at_head_and_middle () =
  let _, lld = fresh_lld () in
  let l = new_list lld in
  let b1 = Lld.new_block lld ~list:l ~pred:Summary.Head () in
  let b0 = Lld.new_block lld ~list:l ~pred:Summary.Head () in
  let b2 = Lld.new_block lld ~list:l ~pred:(Summary.After b1) () in
  Alcotest.check block_ids "head/middle insertion" [ b0; b1; b2 ]
    (Lld.list_blocks lld l)

let test_write_read_roundtrip () =
  let _, lld = fresh_lld () in
  let l = new_list lld in
  let b = append_block lld l in
  Lld.write lld b (block_data 1);
  check_data "read back" (block_data 1) (Lld.read lld b);
  Lld.write lld b (block_data 2);
  check_data "overwrite" (block_data 2) (Lld.read lld b)

let test_unwritten_block_reads_zero () =
  let _, lld = fresh_lld () in
  let l = new_list lld in
  let b = append_block lld l in
  Alcotest.(check bytes) "zeroes" (Bytes.make block_bytes '\000') (Lld.read lld b)

let test_read_after_flush () =
  let _, lld = fresh_lld () in
  let l = new_list lld in
  let b = append_block lld l in
  Lld.write lld b (block_data 7);
  Lld.flush lld;
  check_data "read from persistent storage" (block_data 7) (Lld.read lld b)

let test_wrong_block_size_rejected () =
  let _, lld = fresh_lld () in
  let l = new_list lld in
  let b = append_block lld l in
  Alcotest.check_raises "short write"
    (Invalid_argument "Lld.write: data must be exactly one block") (fun () ->
      Lld.write lld b (Bytes.make 100 'x'))

let test_unallocated_block_rejected () =
  let _, lld = fresh_lld () in
  let ghost = Types.Block_id.of_int 17 in
  Alcotest.check_raises "read" (Errors.Unallocated_block ghost) (fun () ->
      ignore (Lld.read lld ghost));
  Alcotest.check_raises "write" (Errors.Unallocated_block ghost) (fun () ->
      Lld.write lld ghost (block_data 0))

let test_unallocated_list_rejected () =
  let _, lld = fresh_lld () in
  let ghost = Types.List_id.of_int 42 in
  Alcotest.check_raises "new_block on ghost list"
    (Errors.Unallocated_list ghost) (fun () ->
      ignore (Lld.new_block lld ~list:ghost ~pred:Summary.Head ()))

let test_pred_not_on_list_rejected () =
  let _, lld = fresh_lld () in
  let l1 = new_list lld in
  let l2 = new_list lld in
  let b1 = append_block lld l1 in
  Alcotest.check_raises "pred on another list" (Errors.Block_not_on_list b1)
    (fun () -> ignore (Lld.new_block lld ~list:l2 ~pred:(Summary.After b1) ()))

let test_delete_block_middle () =
  let _, lld = fresh_lld () in
  let l = new_list lld in
  let b1 = append_block lld l in
  let b2 = append_block lld l in
  let b3 = append_block lld l in
  Lld.delete_block lld b2;
  Alcotest.check block_ids "middle removed" [ b1; b3 ] (Lld.list_blocks lld l);
  Alcotest.(check bool) "deallocated" false (Lld.block_allocated lld b2);
  (* the predecessor search was exercised *)
  Alcotest.(check bool) "pred search hops counted" true
    ((Lld.counters lld).Lld_core.Counters.pred_search_hops > 0)

let test_delete_block_head_and_tail () =
  let _, lld = fresh_lld () in
  let l = new_list lld in
  let b1 = append_block lld l in
  let b2 = append_block lld l in
  let b3 = append_block lld l in
  Lld.delete_block lld b1;
  Alcotest.check block_ids "head removed" [ b2; b3 ] (Lld.list_blocks lld l);
  Lld.delete_block lld b3;
  Alcotest.check block_ids "tail removed" [ b2 ] (Lld.list_blocks lld l);
  let b4 = append_block lld l in
  Alcotest.check block_ids "append after tail delete" [ b2; b4 ]
    (Lld.list_blocks lld l)

let test_delete_list_deallocates_members () =
  let _, lld = fresh_lld () in
  let l = new_list lld in
  let bs = List.init 5 (fun _ -> append_block lld l) in
  let before = (Lld.counters lld).Lld_core.Counters.pred_search_hops in
  Lld.delete_list lld l;
  let after = (Lld.counters lld).Lld_core.Counters.pred_search_hops in
  Alcotest.(check int) "no predecessor searches" before after;
  Alcotest.(check bool) "list gone" false (Lld.list_exists lld l);
  List.iter
    (fun b ->
      Alcotest.(check bool) "member deallocated" false
        (Lld.block_allocated lld b))
    bs

let test_id_recycling () =
  let _, lld = fresh_lld () in
  let l = new_list lld in
  let b = append_block lld l in
  Lld.delete_block lld b;
  let b' = append_block lld l in
  Alcotest.(check int) "block id recycled" (Types.Block_id.to_int b)
    (Types.Block_id.to_int b');
  Lld.delete_list lld l;
  let l' = new_list lld in
  Alcotest.(check int) "list id recycled" (Types.List_id.to_int l)
    (Types.List_id.to_int l')

let test_lists_enumeration () =
  let _, lld = fresh_lld () in
  let l1 = new_list lld in
  let l2 = new_list lld in
  let l3 = new_list lld in
  Lld.delete_list lld l2;
  Alcotest.(check (list int)) "existing lists"
    [ Types.List_id.to_int l1; Types.List_id.to_int l3 ]
    (List.map Types.List_id.to_int (Lld.lists lld))

let test_block_member () =
  let _, lld = fresh_lld () in
  let l = new_list lld in
  let b = append_block lld l in
  Alcotest.(check (option int)) "member" (Some (Types.List_id.to_int l))
    (Option.map Types.List_id.to_int (Lld.block_member lld b))

let test_many_blocks_spill_segments () =
  let _, lld = fresh_lld () in
  let l = new_list lld in
  (* 300 blocks > 2 segments' worth: forces seals mid-stream *)
  let blocks =
    List.init 300 (fun i ->
        let b = append_block lld l in
        Lld.write lld b (block_data i);
        b)
  in
  Alcotest.(check bool) "segments were written" true
    ((Lld.counters lld).Lld_core.Counters.segments_written >= 2);
  List.iteri
    (fun i b -> check_data (Printf.sprintf "block %d" i) (block_data i) (Lld.read lld b))
    blocks;
  Alcotest.(check int) "list intact" 300 (List.length (Lld.list_blocks lld l))

let test_capacity_accounting () =
  let _, lld = fresh_lld () in
  Alcotest.(check int) "nothing allocated" 0 (Lld.allocated_blocks lld);
  let l = new_list lld in
  let _ = append_block lld l in
  let _ = append_block lld l in
  Alcotest.(check int) "two allocated" 2 (Lld.allocated_blocks lld);
  Alcotest.(check bool) "capacity positive" true (Lld.capacity lld > 0)

let test_sequential_mode_basics () =
  let _, lld = fresh_lld ~config:Config.old_lld () in
  let l = new_list lld in
  let b = append_block lld l in
  Lld.write lld b (block_data 3);
  check_data "seq mode roundtrip" (block_data 3) (Lld.read lld b);
  Lld.flush lld;
  check_data "after flush" (block_data 3) (Lld.read lld b);
  (* the old prototype creates no alternative records *)
  Alcotest.(check int) "no record creates" 0
    (Lld.counters lld).Lld_core.Counters.record_creates

let test_flush_idempotent () =
  let disk, lld = fresh_lld () in
  let l = new_list lld in
  let b = append_block lld l in
  Lld.write lld b (block_data 1);
  Lld.flush lld;
  let writes = (Disk.counters disk).Disk.writes in
  Lld.flush lld;
  Lld.flush lld;
  Alcotest.(check int) "nothing more written" writes
    (Disk.counters disk).Disk.writes;
  check_data "data intact" (block_data 1) (Lld.read lld b)

let test_counters_track_operations () =
  let _, lld = fresh_lld () in
  let c = Lld.counters lld in
  let l = new_list lld in
  let b1 = append_block lld l in
  let b2 = append_block lld l in
  Lld.write lld b1 (block_data 1);
  ignore (Lld.read lld b1);
  Lld.delete_block lld b2;
  Lld.delete_list lld l;
  Alcotest.(check int) "new_lists" 1 c.Lld_core.Counters.new_lists;
  Alcotest.(check int) "new_blocks" 2 c.Lld_core.Counters.new_blocks;
  Alcotest.(check int) "writes" 1 c.Lld_core.Counters.writes;
  Alcotest.(check bool) "reads counted" true (c.Lld_core.Counters.reads >= 1);
  Alcotest.(check int) "delete_blocks" 1 c.Lld_core.Counters.delete_blocks;
  Alcotest.(check int) "delete_lists" 1 c.Lld_core.Counters.delete_lists;
  Alcotest.(check bool) "entries emitted" true
    (c.Lld_core.Counters.summary_entries > 5)

let test_virtual_time_advances () =
  let _, lld = fresh_lld () in
  let clock = Lld.clock lld in
  let t0 = Lld_sim.Clock.now_ns clock in
  let l = new_list lld in
  let b = append_block lld l in
  Lld.write lld b (block_data 1);
  let cpu_spent = Lld_sim.Clock.total_ns clock Lld_sim.Clock.Cpu in
  Alcotest.(check bool) "cpu charged" true (cpu_spent > 0);
  Lld.flush lld;
  let io_spent = Lld_sim.Clock.total_ns clock Lld_sim.Clock.Io in
  Alcotest.(check bool) "io charged by the flush" true (io_spent > 0);
  Alcotest.(check bool) "clock monotone" true (Lld_sim.Clock.now_ns clock > t0)

let test_disk_full_on_block_exhaustion () =
  (* a tiny partition: exhaust logical ids *)
  let geom = Geometry.v ~num_segments:12 () in
  let config = { Config.default with Config.auto_clean = false } in
  let _, lld = fresh_lld ~config ~geom () in
  let l = new_list lld in
  Alcotest.check_raises "eventually full" Errors.Disk_full (fun () ->
      for _ = 1 to 100_000 do
        let b = append_block lld l in
        Lld.write lld b (block_data 0)
      done)

let () =
  Alcotest.run "lld_core"
    [
      ( "ld-interface",
        [
          Alcotest.test_case "new list and blocks" `Quick
            test_new_list_and_blocks;
          Alcotest.test_case "first list id is 1" `Quick
            test_first_list_id_is_one;
          Alcotest.test_case "insert head and middle" `Quick
            test_insert_at_head_and_middle;
          Alcotest.test_case "write/read roundtrip" `Quick
            test_write_read_roundtrip;
          Alcotest.test_case "unwritten reads zero" `Quick
            test_unwritten_block_reads_zero;
          Alcotest.test_case "read after flush" `Quick test_read_after_flush;
          Alcotest.test_case "wrong size rejected" `Quick
            test_wrong_block_size_rejected;
          Alcotest.test_case "unallocated block rejected" `Quick
            test_unallocated_block_rejected;
          Alcotest.test_case "unallocated list rejected" `Quick
            test_unallocated_list_rejected;
          Alcotest.test_case "pred not on list rejected" `Quick
            test_pred_not_on_list_rejected;
        ] );
      ( "deletion",
        [
          Alcotest.test_case "delete middle block" `Quick
            test_delete_block_middle;
          Alcotest.test_case "delete head and tail" `Quick
            test_delete_block_head_and_tail;
          Alcotest.test_case "delete list deallocates members" `Quick
            test_delete_list_deallocates_members;
          Alcotest.test_case "identifier recycling" `Quick test_id_recycling;
        ] );
      ( "introspection",
        [
          Alcotest.test_case "lists enumeration" `Quick test_lists_enumeration;
          Alcotest.test_case "block member" `Quick test_block_member;
          Alcotest.test_case "capacity accounting" `Quick
            test_capacity_accounting;
        ] );
      ( "storage",
        [
          Alcotest.test_case "many blocks spill segments" `Quick
            test_many_blocks_spill_segments;
          Alcotest.test_case "sequential mode basics" `Quick
            test_sequential_mode_basics;
          Alcotest.test_case "flush is idempotent" `Quick test_flush_idempotent;
          Alcotest.test_case "counters track operations" `Quick
            test_counters_track_operations;
          Alcotest.test_case "virtual time advances" `Quick
            test_virtual_time_advances;
          Alcotest.test_case "disk full on exhaustion" `Slow
            test_disk_full_on_block_exhaustion;
        ] );
    ]
