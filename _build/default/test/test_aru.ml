open Helpers

(* Semantics of concurrent atomic recovery units (paper §3). *)

let test_shadow_isolated_until_commit () =
  let _, lld = fresh_lld () in
  let l = new_list lld in
  let b = append_block lld l in
  Lld.write lld b (block_data 1);
  let a = Lld.begin_aru lld in
  Lld.write lld ~aru:a b (block_data 2);
  (* option 3 visibility: the ARU sees its shadow, simple reads see the
     committed version *)
  check_data "ARU sees its shadow" (block_data 2) (Lld.read lld ~aru:a b);
  check_data "simple read sees committed" (block_data 1) (Lld.read lld b);
  Lld.end_aru lld a;
  check_data "visible after commit" (block_data 2) (Lld.read lld b)

let test_two_arus_isolated () =
  let _, lld = fresh_lld () in
  let l = new_list lld in
  let b = append_block lld l in
  Lld.write lld b (block_data 0);
  let a1 = Lld.begin_aru lld in
  let a2 = Lld.begin_aru lld in
  Lld.write lld ~aru:a1 b (block_data 1);
  Lld.write lld ~aru:a2 b (block_data 2);
  check_data "a1 sees its own" (block_data 1) (Lld.read lld ~aru:a1 b);
  check_data "a2 sees its own" (block_data 2) (Lld.read lld ~aru:a2 b);
  check_data "simple sees committed" (block_data 0) (Lld.read lld b);
  (* ARUs serialize by EndARU, but data versions carry their write
     stamps: the later write (a2's) wins regardless of commit order *)
  Lld.end_aru lld a2;
  Lld.end_aru lld a1;
  check_data "later write stamp wins" (block_data 2) (Lld.read lld b)

let test_aru_list_operations_isolated () =
  let _, lld = fresh_lld () in
  let l = new_list lld in
  let b1 = append_block lld l in
  let a = Lld.begin_aru lld in
  let b2 = append_block ~aru:a lld l in
  Alcotest.check block_ids "ARU sees insertion" [ b1; b2 ]
    (Lld.list_blocks lld ~aru:a l);
  Alcotest.check block_ids "others do not" [ b1 ] (Lld.list_blocks lld l);
  Lld.end_aru lld a;
  Alcotest.check block_ids "merged after commit" [ b1; b2 ]
    (Lld.list_blocks lld l)

let test_allocation_in_committed_state () =
  (* paper §3.3: NewBlock inside an ARU allocates in the committed
     state immediately, so concurrent ARUs can never get the same id;
     but the allocation is invisible to others. *)
  let _, lld = fresh_lld () in
  let l = new_list lld in
  let a1 = Lld.begin_aru lld in
  let a2 = Lld.begin_aru lld in
  let b1 = Lld.new_block lld ~aru:a1 ~list:l ~pred:Summary.Head () in
  let b2 = Lld.new_block lld ~aru:a2 ~list:l ~pred:Summary.Head () in
  Alcotest.(check bool) "distinct ids" false (Types.Block_id.equal b1 b2);
  (* others cannot see (or touch) the un-committed allocation *)
  Alcotest.(check bool) "invisible to simple" false (Lld.block_allocated lld b1);
  Alcotest.(check bool) "invisible to the other ARU" false
    (Lld.block_allocated lld ~aru:a2 b1);
  Alcotest.(check bool) "visible to its owner" true
    (Lld.block_allocated lld ~aru:a1 b1);
  Alcotest.check_raises "other ARU cannot write it"
    (Errors.Unallocated_block b1) (fun () ->
      Lld.write lld ~aru:a2 b1 (block_data 9));
  Lld.end_aru lld a1;
  Alcotest.(check bool) "visible after commit" true (Lld.block_allocated lld b1);
  Lld.end_aru lld a2

let test_list_allocation_hidden_until_commit () =
  let _, lld = fresh_lld () in
  let a1 = Lld.begin_aru lld in
  let a2 = Lld.begin_aru lld in
  let l = Lld.new_list lld ~aru:a1 () in
  Alcotest.(check bool) "visible to owner" true (Lld.list_exists lld ~aru:a1 l);
  Alcotest.(check bool) "hidden from simple" false (Lld.list_exists lld l);
  Alcotest.(check bool) "hidden from other ARUs" false
    (Lld.list_exists lld ~aru:a2 l);
  Alcotest.check_raises "others cannot populate it" (Errors.Unallocated_list l)
    (fun () -> ignore (Lld.new_block lld ~aru:a2 ~list:l ~pred:Summary.Head ()));
  Lld.end_aru lld a1;
  Alcotest.(check bool) "visible after commit" true (Lld.list_exists lld l);
  Lld.end_aru lld a2

let test_write_after_own_shadow_delete_rejected () =
  let _, lld = fresh_lld () in
  let l = new_list lld in
  let b = append_block lld l in
  let a = Lld.begin_aru lld in
  Lld.delete_block lld ~aru:a b;
  Alcotest.check_raises "write to shadow-deleted block"
    (Errors.Unallocated_block b) (fun () ->
      Lld.write lld ~aru:a b (block_data 1));
  Alcotest.check_raises "read of shadow-deleted block"
    (Errors.Unallocated_block b) (fun () -> ignore (Lld.read lld ~aru:a b));
  (* but the committed state still has it *)
  Alcotest.(check bool) "committed still allocated" true
    (Lld.block_allocated lld b);
  Lld.end_aru lld a

let test_delete_block_in_aru () =
  let _, lld = fresh_lld () in
  let l = new_list lld in
  let b1 = append_block lld l in
  let b2 = append_block lld l in
  let a = Lld.begin_aru lld in
  Lld.delete_block lld ~aru:a b1;
  Alcotest.check block_ids "shadow sees deletion" [ b2 ]
    (Lld.list_blocks lld ~aru:a l);
  Alcotest.check block_ids "committed unchanged" [ b1; b2 ]
    (Lld.list_blocks lld l);
  Alcotest.(check bool) "still committed-allocated" true
    (Lld.block_allocated lld b1);
  Lld.end_aru lld a;
  Alcotest.check block_ids "deletion merged" [ b2 ] (Lld.list_blocks lld l);
  Alcotest.(check bool) "deallocated after commit" false
    (Lld.block_allocated lld b1)

let test_delete_list_in_aru () =
  let _, lld = fresh_lld () in
  let l = new_list lld in
  let bs = List.init 3 (fun _ -> append_block lld l) in
  let a = Lld.begin_aru lld in
  Lld.delete_list lld ~aru:a l;
  Alcotest.(check bool) "shadow sees list gone" false
    (Lld.list_exists lld ~aru:a l);
  Alcotest.(check bool) "committed still there" true (Lld.list_exists lld l);
  Lld.end_aru lld a;
  Alcotest.(check bool) "gone after commit" false (Lld.list_exists lld l);
  List.iter
    (fun b ->
      Alcotest.(check bool) "members deallocated" false
        (Lld.block_allocated lld b))
    bs

let test_abort_discards_shadow () =
  let _, lld = fresh_lld () in
  let l = new_list lld in
  let b = append_block lld l in
  Lld.write lld b (block_data 1);
  let a = Lld.begin_aru lld in
  Lld.write lld ~aru:a b (block_data 2);
  let b2 = Lld.new_block lld ~aru:a ~list:l ~pred:(Summary.After b) () in
  Lld.abort_aru lld a;
  check_data "write discarded" (block_data 1) (Lld.read lld b);
  Alcotest.check block_ids "insertion discarded" [ b ] (Lld.list_blocks lld l);
  (* the allocation itself survives the abort (paper §3.3)... *)
  Alcotest.(check bool) "allocation survives" true (Lld.block_allocated lld b2);
  Alcotest.(check (option int)) "but on no list" None
    (Option.map Types.List_id.to_int (Lld.block_member lld b2));
  (* ...until the scavenger frees it *)
  let freed = Lld.scavenge lld in
  Alcotest.(check int) "scavenged" 1 freed;
  Alcotest.(check bool) "freed" false (Lld.block_allocated lld b2)

let test_aru_ids_unique_and_tracked () =
  let _, lld = fresh_lld () in
  let a1 = Lld.begin_aru lld in
  let a2 = Lld.begin_aru lld in
  Alcotest.(check bool) "distinct" false (Types.Aru_id.equal a1 a2);
  Alcotest.(check int) "two active" 2 (List.length (Lld.active_arus lld));
  Lld.end_aru lld a1;
  Alcotest.(check bool) "a1 inactive" false (Lld.aru_active lld a1);
  Alcotest.(check bool) "a2 active" true (Lld.aru_active lld a2);
  Lld.end_aru lld a2

let test_end_unknown_aru_rejected () =
  let _, lld = fresh_lld () in
  let a = Lld.begin_aru lld in
  Lld.end_aru lld a;
  Alcotest.check_raises "double end" (Errors.Unknown_aru a) (fun () ->
      Lld.end_aru lld a);
  Alcotest.check_raises "op on finished aru" (Errors.Unknown_aru a) (fun () ->
      ignore (Lld.new_list lld ~aru:a ()))

let test_max_versions_bound () =
  (* n active ARUs + committed + persistent = n + 2 versions (paper
     §3.3): writing the same block in 3 ARUs plus a simple write keeps
     exactly 3 shadow + 1 committed alternative records. *)
  let _, lld = fresh_lld () in
  let l = new_list lld in
  let b = append_block lld l in
  Lld.write lld b (block_data 0);
  let arus = List.init 3 (fun _ -> Lld.begin_aru lld) in
  List.iteri (fun i a -> Lld.write lld ~aru:a b (block_data (i + 1))) arus;
  List.iteri
    (fun i a ->
      check_data
        (Printf.sprintf "aru %d sees its version" i)
        (block_data (i + 1))
        (Lld.read lld ~aru:a b))
    arus;
  check_data "committed version intact" (block_data 0) (Lld.read lld b);
  List.iter (fun a -> Lld.end_aru lld a) arus

let test_visibility_option_committed_only () =
  let config = { Config.default with Config.visibility = Config.Committed_only } in
  let _, lld = fresh_lld ~config () in
  let l = new_list lld in
  let b = append_block lld l in
  Lld.write lld b (block_data 1);
  let a = Lld.begin_aru lld in
  Lld.write lld ~aru:a b (block_data 2);
  (* option 2: even the writer reads the committed version *)
  check_data "ARU reads committed" (block_data 1) (Lld.read lld ~aru:a b);
  Lld.end_aru lld a;
  check_data "after commit" (block_data 2) (Lld.read lld b)

let test_visibility_option_any_shadow () =
  let config = { Config.default with Config.visibility = Config.Any_shadow } in
  let _, lld = fresh_lld ~config () in
  let l = new_list lld in
  let b = append_block lld l in
  Lld.write lld b (block_data 1);
  let a1 = Lld.begin_aru lld in
  let a2 = Lld.begin_aru lld in
  Lld.write lld ~aru:a1 b (block_data 2);
  (* option 1: every reader sees the most recent shadow version *)
  check_data "simple read sees a1's shadow" (block_data 2) (Lld.read lld b);
  check_data "a2 sees a1's shadow" (block_data 2) (Lld.read lld ~aru:a2 b);
  Lld.write lld ~aru:a2 b (block_data 3);
  check_data "newest shadow wins" (block_data 3) (Lld.read lld b);
  Lld.end_aru lld a1;
  Lld.end_aru lld a2

let test_sequential_mode_single_aru () =
  let _, lld = fresh_lld ~config:Config.old_lld () in
  let a = Lld.begin_aru lld in
  Alcotest.check_raises "no concurrent ARUs in the old prototype"
    Errors.Aru_already_active (fun () -> ignore (Lld.begin_aru lld));
  Lld.end_aru lld a;
  let a2 = Lld.begin_aru lld in
  Lld.end_aru lld a2

let test_sequential_mode_aru_updates_in_place () =
  let _, lld = fresh_lld ~config:Config.old_lld () in
  let l = new_list lld in
  let b = append_block lld l in
  Lld.write lld b (block_data 1);
  let a = Lld.begin_aru lld in
  Lld.write lld ~aru:a b (block_data 2);
  (* the old prototype has a single stream: updates are immediately
     visible to everyone *)
  check_data "single stream" (block_data 2) (Lld.read lld b);
  Lld.end_aru lld a

let test_sequential_abort_unsupported () =
  let _, lld = fresh_lld ~config:Config.old_lld () in
  let a = Lld.begin_aru lld in
  Alcotest.check_raises "abort unsupported"
    (Invalid_argument "Lld.abort_aru: not supported by the sequential prototype")
    (fun () -> Lld.abort_aru lld a);
  Lld.end_aru lld a

let test_with_aru_commits () =
  let _, lld = fresh_lld () in
  let l = new_list lld in
  let b =
    Lld.with_aru lld (fun aru ->
        let b = Lld.new_block lld ~aru ~list:l ~pred:Summary.Head () in
        Lld.write lld ~aru b (block_data 4);
        b)
  in
  check_data "committed on return" (block_data 4) (Lld.read lld b);
  Alcotest.(check int) "no ARU left active" 0
    (List.length (Lld.active_arus lld))

let test_with_aru_aborts_on_exception () =
  let _, lld = fresh_lld () in
  let l = new_list lld in
  let b = append_block lld l in
  Lld.write lld b (block_data 1);
  Alcotest.check_raises "exception propagates" Exit (fun () ->
      Lld.with_aru lld (fun aru ->
          Lld.write lld ~aru b (block_data 9);
          raise Exit));
  check_data "write rolled back" (block_data 1) (Lld.read lld b);
  Alcotest.(check int) "no ARU left active" 0
    (List.length (Lld.active_arus lld))

let test_commit_replays_into_committed_state () =
  let _, lld = fresh_lld () in
  let l = new_list lld in
  let a = Lld.begin_aru lld in
  let b = Lld.new_block lld ~aru:a ~list:l ~pred:Summary.Head () in
  Lld.write lld ~aru:a b (block_data 5);
  let before = (Lld.counters lld).Lld_core.Counters.link_log_replays in
  Lld.end_aru lld a;
  let after = (Lld.counters lld).Lld_core.Counters.link_log_replays in
  Alcotest.(check bool) "log was replayed" true (after > before);
  check_data "data merged" (block_data 5) (Lld.read lld b)

let test_conflicting_merge_is_deterministic () =
  (* two ARUs delete the same block; the second commit's operations are
     skipped rather than corrupting the list *)
  let _, lld = fresh_lld () in
  let l = new_list lld in
  let b1 = append_block lld l in
  let b2 = append_block lld l in
  let a1 = Lld.begin_aru lld in
  let a2 = Lld.begin_aru lld in
  Lld.delete_block lld ~aru:a1 b1;
  Lld.delete_block lld ~aru:a2 b1;
  Lld.end_aru lld a1;
  Lld.end_aru lld a2;
  Alcotest.check block_ids "list consistent" [ b2 ] (Lld.list_blocks lld l);
  Alcotest.(check bool) "skips recorded" true
    ((Lld.counters lld).Lld_core.Counters.replay_skips > 0)

let test_commit_spanning_segments () =
  (* an ARU touching more data than one segment commits correctly *)
  let _, lld = fresh_lld () in
  let l = new_list lld in
  let a = Lld.begin_aru lld in
  let blocks =
    List.init 200 (fun i ->
        let b = append_block ~aru:a lld l in
        Lld.write lld ~aru:a b (block_data i);
        b)
  in
  Lld.end_aru lld a;
  Lld.flush lld;
  List.iteri
    (fun i b -> check_data (Printf.sprintf "block %d" i) (block_data i) (Lld.read lld b))
    blocks

let () =
  Alcotest.run "lld_aru"
    [
      ( "isolation",
        [
          Alcotest.test_case "shadow isolated until commit" `Quick
            test_shadow_isolated_until_commit;
          Alcotest.test_case "two ARUs isolated" `Quick test_two_arus_isolated;
          Alcotest.test_case "list operations isolated" `Quick
            test_aru_list_operations_isolated;
          Alcotest.test_case "n+2 versions" `Quick test_max_versions_bound;
        ] );
      ( "allocation",
        [
          Alcotest.test_case "allocation in committed state" `Quick
            test_allocation_in_committed_state;
          Alcotest.test_case "list allocation hidden until commit" `Quick
            test_list_allocation_hidden_until_commit;
        ] );
      ( "deletion",
        [
          Alcotest.test_case "delete block in ARU" `Quick
            test_delete_block_in_aru;
          Alcotest.test_case "ops on shadow-deleted block rejected" `Quick
            test_write_after_own_shadow_delete_rejected;
          Alcotest.test_case "delete list in ARU" `Quick test_delete_list_in_aru;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "abort discards shadow" `Quick
            test_abort_discards_shadow;
          Alcotest.test_case "ids unique and tracked" `Quick
            test_aru_ids_unique_and_tracked;
          Alcotest.test_case "unknown ARU rejected" `Quick
            test_end_unknown_aru_rejected;
          Alcotest.test_case "with_aru commits" `Quick test_with_aru_commits;
          Alcotest.test_case "with_aru aborts on exception" `Quick
            test_with_aru_aborts_on_exception;
          Alcotest.test_case "commit replays the link log" `Quick
            test_commit_replays_into_committed_state;
          Alcotest.test_case "conflicting merges deterministic" `Quick
            test_conflicting_merge_is_deterministic;
          Alcotest.test_case "commit spanning segments" `Quick
            test_commit_spanning_segments;
        ] );
      ( "visibility-options",
        [
          Alcotest.test_case "option 2: committed only" `Quick
            test_visibility_option_committed_only;
          Alcotest.test_case "option 1: any shadow" `Quick
            test_visibility_option_any_shadow;
        ] );
      ( "sequential-mode",
        [
          Alcotest.test_case "single ARU at a time" `Quick
            test_sequential_mode_single_aru;
          Alcotest.test_case "updates in place" `Quick
            test_sequential_mode_aru_updates_in_place;
          Alcotest.test_case "abort unsupported" `Quick
            test_sequential_abort_unsupported;
        ] );
    ]
