(* The conventional update-in-place Minix baseline (lib/minixdisk). *)

module Clock = Lld_sim.Clock
module Geometry = Lld_disk.Geometry
module Disk = Lld_disk.Disk
module Classic = Lld_minixdisk.Classic

let fresh ?(geom = Geometry.small) () =
  let clock = Clock.create () in
  let disk = Disk.create ~clock geom in
  (clock, disk, Classic.mkfs ~inode_count:512 disk)

let payload n = Bytes.init n (fun i -> Char.chr ((i * 11) land 0xff))

let test_create_write_read () =
  let _, _, fs = fresh () in
  Classic.create fs "hello";
  Classic.write_file fs "hello" ~off:0 (payload 5000);
  Alcotest.(check bytes) "roundtrip" (payload 5000)
    (Classic.read_file fs "hello" ~off:0 ~len:5000);
  Alcotest.(check int) "size" 5000 (Classic.stat fs "hello").Classic.size;
  Alcotest.(check int) "blocks" 2 (Classic.stat fs "hello").Classic.blocks

let test_listing_and_errors () =
  let _, _, fs = fresh () in
  Classic.create fs "a";
  Classic.create fs "b";
  Alcotest.(check (list string)) "sorted listing" [ "a"; "b" ] (Classic.list fs);
  Alcotest.check_raises "duplicate" (Classic.File_exists "a") (fun () ->
      Classic.create fs "a");
  Alcotest.check_raises "missing" (Classic.File_not_found "zz") (fun () ->
      ignore (Classic.read_file fs "zz" ~off:0 ~len:1))

let test_unlink_frees_space () =
  let _, _, fs = fresh () in
  Classic.create fs "f";
  Classic.write_file fs "f" ~off:0 (payload 40_000);
  Classic.unlink fs "f";
  Alcotest.(check (list string)) "gone" [] (Classic.list fs);
  (* the freed zones are reusable: fill a large part of the partition
     twice; without freeing this would hit No_space *)
  for round = 1 to 2 do
    let name = Printf.sprintf "big%d" round in
    Classic.create fs name;
    Classic.write_file fs name ~off:0 (payload 100_000);
    Classic.unlink fs name
  done;
  Alcotest.(check (list string)) "still empty" [] (Classic.list fs)

let test_indirect_zones () =
  (* cross the direct (7 blocks) and single-indirect (1031 blocks)
     boundaries *)
  let _, _, fs = fresh () in
  Classic.create fs "big";
  let direct_limit = 7 * 4096 in
  Classic.write_file fs "big" ~off:0 (payload (direct_limit + 3 * 4096));
  Alcotest.(check bytes) "across the indirect boundary"
    (Bytes.sub (payload (direct_limit + 3 * 4096)) (direct_limit - 100) 200)
    (Classic.read_file fs "big" ~off:(direct_limit - 100) ~len:200)

let test_double_indirect_zones () =
  let geom = Geometry.v ~num_segments:48 () in
  let _, _, fs = fresh ~geom () in
  Classic.create fs "huge";
  (* block index past 7 + 1024: needs the double-indirect tree *)
  let off = (7 + 1024 + 5) * 4096 in
  Classic.write_file fs "huge" ~off (payload 4096);
  Alcotest.(check bytes) "double-indirect block readable" (payload 4096)
    (Classic.read_file fs "huge" ~off ~len:4096);
  Alcotest.(check bytes) "hole reads zero" (Bytes.make 10 '\000')
    (Classic.read_file fs "huge" ~off:4096 ~len:10)

let test_mount_after_flush () =
  let _, disk, fs = fresh () in
  Classic.create fs "keep";
  Classic.write_file fs "keep" ~off:0 (payload 9000);
  Classic.flush fs;
  let fs2 = Classic.mount disk in
  Alcotest.(check bytes) "data persisted" (payload 9000)
    (Classic.read_file fs2 "keep" ~off:0 ~len:9000);
  (* allocation state persisted too: creating must not clobber *)
  Classic.create fs2 "more";
  Classic.write_file fs2 "more" ~off:0 (payload 5000);
  Alcotest.(check bytes) "old file intact" (payload 9000)
    (Classic.read_file fs2 "keep" ~off:0 ~len:9000)

let test_meta_is_synchronous () =
  let _, disk, fs = fresh () in
  let writes0 = (Disk.counters disk).Disk.writes in
  Classic.create fs "f" (* bitmap + inode + dirent updates *);
  let writes1 = (Disk.counters disk).Disk.writes in
  Alcotest.(check bool)
    (Printf.sprintf "meta written through (%d writes)" (writes1 - writes0))
    true
    (writes1 - writes0 >= 3)

let test_data_is_write_back () =
  let _, disk, fs = fresh () in
  Classic.create fs "f";
  let writes0 = (Disk.counters disk).Disk.writes in
  (* a small data write sits in the cache (only meta goes out) *)
  Classic.write_file fs "f" ~off:0 (payload 100);
  Classic.write_file fs "f" ~off:100 (payload 100);
  let data_writes = (Disk.counters disk).Disk.writes - writes0 in
  Alcotest.(check bool)
    (Printf.sprintf "few writes before flush (%d)" data_writes)
    true (data_writes <= 4);
  Classic.flush fs;
  Alcotest.(check bool) "flushed" true
    ((Disk.counters disk).Disk.writes > writes0 + data_writes)

let test_write_bandwidth_shape () =
  (* the paper's background claim (§2): the log-structured MinixLLD
     utilises far more of the disk bandwidth on writes than the
     conventional Minix *)
  let geom = Geometry.v ~num_segments:96 () in
  let mb = 16 in
  let chunk = Bytes.make 65536 'w' in
  let classic_time =
    let clock = Clock.create () in
    let disk = Disk.create ~clock geom in
    let fs = Classic.mkfs disk in
    Classic.create fs "big";
    Clock.reset clock;
    for i = 0 to (mb * 16) - 1 do
      Classic.write_file fs "big" ~off:(i * 65536) chunk
    done;
    Classic.flush fs;
    Clock.now_ns clock
  in
  let lld_time =
    let clock = Clock.create () in
    let disk = Disk.create ~clock geom in
    let lld = Lld_core.Lld.create disk in
    let fs = Lld_minixfs.Fs.mkfs lld in
    Lld_minixfs.Fs.create fs "/big";
    Clock.reset clock;
    for i = 0 to (mb * 16) - 1 do
      Lld_minixfs.Fs.write_file fs "/big" ~off:(i * 65536) chunk
    done;
    Lld_minixfs.Fs.flush fs;
    Clock.now_ns clock
  in
  Alcotest.(check bool)
    (Printf.sprintf "LLD writes much faster (classic %.2fs vs LLD %.2fs)"
       (float_of_int classic_time /. 1e9)
       (float_of_int lld_time /. 1e9))
    true
    (classic_time > 2 * lld_time)

let () =
  Alcotest.run "lld_classic"
    [
      ( "basics",
        [
          Alcotest.test_case "create/write/read" `Quick test_create_write_read;
          Alcotest.test_case "listing and errors" `Quick test_listing_and_errors;
          Alcotest.test_case "unlink frees space" `Quick test_unlink_frees_space;
          Alcotest.test_case "mount after flush" `Quick test_mount_after_flush;
        ] );
      ( "zones",
        [
          Alcotest.test_case "indirect" `Quick test_indirect_zones;
          Alcotest.test_case "double indirect" `Quick test_double_indirect_zones;
        ] );
      ( "write-policy",
        [
          Alcotest.test_case "meta synchronous" `Quick test_meta_is_synchronous;
          Alcotest.test_case "data write-back" `Quick test_data_is_write_back;
          Alcotest.test_case "bandwidth shape vs LLD" `Slow
            test_write_bandwidth_shape;
        ] );
    ]
