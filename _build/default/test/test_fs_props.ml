(* Model-based property testing of the Minix-like file system: random
   operation sequences run against both the real FS and a trivial
   in-memory specification (paths -> file identity -> content, so hard
   links alias correctly); every observable is compared, then the FS is
   flushed, remounted, and compared again. *)

open Helpers
module Fs = Lld_minixfs.Fs
module Fsck = Lld_minixfs.Fsck
module Layout = Lld_minixfs.Layout
module Rng = Lld_sim.Rng

module Spec = struct
  type node = Dir | File of int (* file identity *)

  type t = {
    mutable nodes : (string * node) list; (* path -> node *)
    mutable contents : (int * bytes) list; (* identity -> content *)
    mutable next_id : int;
  }

  let empty () = { nodes = [ ("/", Dir) ]; contents = []; next_id = 0 }
  let find t path = List.assoc_opt path t.nodes

  let parent path =
    match String.rindex_opt path '/' with
    | Some 0 -> "/"
    | Some i -> String.sub path 0 i
    | None -> invalid_arg "Spec.parent"

  let children t path =
    let prefix = if path = "/" then "/" else path ^ "/" in
    List.filter_map
      (fun (p, _) ->
        if
          p <> "/"
          && String.length p > String.length prefix
          && String.sub p 0 (String.length prefix) = prefix
          && not (String.contains_from p (String.length prefix) '/')
        then Some (String.sub p (String.length prefix)
                     (String.length p - String.length prefix))
        else None)
      t.nodes
    |> List.sort String.compare

  let content t id = List.assoc id t.contents

  let set_content t id data =
    t.contents <- (id, data) :: List.remove_assoc id t.contents

  let refcount t id =
    List.length (List.filter (fun (_, n) -> n = File id) t.nodes)

  let mkdir t path =
    if find t path <> None then Error `Exists
    else if find t (parent path) <> Some Dir then Error `Bad_parent
    else begin
      t.nodes <- (path, Dir) :: t.nodes;
      Ok ()
    end

  let create t path =
    if find t path <> None then Error `Exists
    else if find t (parent path) <> Some Dir then Error `Bad_parent
    else begin
      let id = t.next_id in
      t.next_id <- id + 1;
      t.nodes <- (path, File id) :: t.nodes;
      set_content t id Bytes.empty;
      Ok ()
    end

  let write t path ~off data =
    match find t path with
    | Some (File id) ->
      let old = content t id in
      let size = max (Bytes.length old) (off + Bytes.length data) in
      let buf = Bytes.make size '\000' in
      Bytes.blit old 0 buf 0 (Bytes.length old);
      Bytes.blit data 0 buf off (Bytes.length data);
      set_content t id buf;
      Ok ()
    | Some Dir -> Error `Is_dir
    | None -> Error `Missing

  let truncate t path ~size =
    match find t path with
    | Some (File id) ->
      let old = content t id in
      let buf = Bytes.make size '\000' in
      Bytes.blit old 0 buf 0 (min size (Bytes.length old));
      set_content t id buf;
      Ok ()
    | Some Dir -> Error `Is_dir
    | None -> Error `Missing

  let unlink t path =
    match find t path with
    | Some (File id) ->
      t.nodes <- List.remove_assoc path t.nodes;
      if refcount t id = 0 then
        t.contents <- List.remove_assoc id t.contents;
      Ok ()
    | Some Dir -> Error `Is_dir
    | None -> Error `Missing

  let rmdir t path =
    match find t path with
    | Some Dir when path <> "/" ->
      if children t path <> [] then Error `Not_empty
      else begin
        t.nodes <- List.remove_assoc path t.nodes;
        Ok ()
      end
    | Some Dir -> Error `Is_dir
    | Some (File _) -> Error `Not_dir
    | None -> Error `Missing

  let link t existing fresh =
    match (find t existing, find t fresh, find t (parent fresh)) with
    | Some (File id), None, Some Dir ->
      t.nodes <- (fresh, File id) :: t.nodes;
      Ok ()
    | Some Dir, _, _ -> Error `Is_dir
    | None, _, _ -> Error `Missing
    | _, Some _, _ -> Error `Exists
    | _, _, (Some (File _) | None) -> Error `Bad_parent

  let rename t src dst =
    match (find t src, find t dst) with
    | None, _ -> Error `Missing
    | Some src_node, dst_node -> (
      if src = dst then Ok ()
      else
        match (src_node, dst_node) with
        | File id, Some (File id2) when id = id2 -> Ok () (* same file *)
        | _, Some Dir -> Error `Is_dir
        | Dir, Some (File _) -> Error `Exists
        | Dir, None
          when String.length dst > String.length src
               && String.sub dst 0 (String.length src + 1) = src ^ "/" ->
          Error `Into_self
        | (File _ | Dir), _ when find t (parent dst) <> Some Dir ->
          Error `Bad_parent
        | Dir, None ->
          (* move the subtree *)
          t.nodes <-
            List.map
              (fun (p, n) ->
                if p = src then (dst, n)
                else if
                  String.length p > String.length src
                  && String.sub p 0 (String.length src + 1) = src ^ "/"
                then
                  ( dst ^ String.sub p (String.length src)
                      (String.length p - String.length src),
                    n )
                else (p, n))
              t.nodes;
          Ok ()
        | File id, (Some (File _) | None) ->
          (match dst_node with
          | Some (File old_id) ->
            t.nodes <- List.remove_assoc dst t.nodes;
            if refcount t old_id = 0 then
              t.contents <- List.remove_assoc old_id t.contents
          | Some Dir | None -> ());
          t.nodes <- (dst, File id) :: List.remove_assoc src t.nodes;
          Ok ())
end

(* ------------------------------------------------------------------ *)

let some_paths rng =
  let d () = Printf.sprintf "/dir%d" (Rng.int rng 4) in
  let leaf () = Printf.sprintf "f%d" (Rng.int rng 6) in
  match Rng.int rng 4 with
  | 0 -> d ()
  | 1 -> Printf.sprintf "/top%d" (Rng.int rng 6)
  | _ -> d () ^ "/" ^ leaf ()

let apply_both fs spec op =
  (* run the op on both; both must agree on success/failure class *)
  let fs_result f =
    match f () with
    | () -> Ok ()
    | exception Fs.Already_exists _ -> Error `Exists
    | exception Fs.Not_found_path _ -> Error `Missing
    | exception Fs.Is_a_directory _ -> Error `Is_dir
    | exception Fs.Not_a_directory _ -> Error `Bad_parent
    | exception Fs.Directory_not_empty _ -> Error `Not_empty
    | exception Fs.Invalid_name _ -> Error `Into_self
  in
  let agree label a b =
    let tag = function
      | Ok () -> "ok"
      | Error `Exists -> "exists"
      | Error `Missing -> "missing"
      | Error `Is_dir -> "is-dir"
      | Error `Not_dir -> "not-dir"
      | Error `Bad_parent -> "bad-parent"
      | Error `Not_empty -> "not-empty"
      | Error `Into_self -> "into-self"
    in
    (* `Not_dir vs `Bad_parent and `Is_dir distinctions are allowed to
       differ in flavour but not in success/failure *)
    if (a = Ok ()) <> (b = Ok ()) then
      Alcotest.failf "%s: fs %s vs spec %s" label (tag a) (tag b)
  in
  match op with
  | `Mkdir p -> agree ("mkdir " ^ p) (fs_result (fun () -> Fs.mkdir fs p)) (Spec.mkdir spec p)
  | `Create p ->
    agree ("create " ^ p) (fs_result (fun () -> Fs.create fs p)) (Spec.create spec p)
  | `Write (p, off, data) ->
    agree ("write " ^ p)
      (fs_result (fun () -> Fs.write_file fs p ~off data))
      (Spec.write spec p ~off data)
  | `Truncate (p, size) ->
    agree ("truncate " ^ p)
      (fs_result (fun () -> Fs.truncate fs p ~size))
      (Spec.truncate spec p ~size)
  | `Unlink p ->
    agree ("unlink " ^ p) (fs_result (fun () -> Fs.unlink fs p)) (Spec.unlink spec p)
  | `Rmdir p ->
    agree ("rmdir " ^ p) (fs_result (fun () -> Fs.rmdir fs p)) (Spec.rmdir spec p)
  | `Link (a, b) ->
    agree
      (Printf.sprintf "link %s %s" a b)
      (fs_result (fun () -> Fs.link fs a b))
      (Spec.link spec a b)
  | `Rename (a, b) ->
    agree
      (Printf.sprintf "rename %s %s" a b)
      (fs_result (fun () -> Fs.rename fs a b))
      (Spec.rename spec a b)

let random_op rng =
  let p () = some_paths rng in
  match Rng.int rng 12 with
  | 0 | 1 -> `Mkdir (p ())
  | 2 | 3 | 4 -> `Create (p ())
  | 5 | 6 ->
    `Write (p (), Rng.int rng 6000, Bytes.make (1 + Rng.int rng 6000)
              (Char.chr (65 + Rng.int rng 26)))
  | 7 -> `Truncate (p (), Rng.int rng 9000)
  | 8 -> `Unlink (p ())
  | 9 -> `Rmdir (p ())
  | 10 -> `Link (p (), p ())
  | _ -> `Rename (p (), p ())

(* Compare everything observable. *)
let rec compare_tree fs spec path =
  let fs_children = List.sort String.compare (Fs.readdir fs path) in
  let spec_children = Spec.children spec path in
  if fs_children <> spec_children then
    Alcotest.failf "readdir %s: fs [%s] spec [%s]" path
      (String.concat ";" fs_children)
      (String.concat ";" spec_children);
  List.iter
    (fun name ->
      let child = (if path = "/" then "" else path) ^ "/" ^ name in
      match Spec.find spec child with
      | Some Spec.Dir ->
        if (Fs.stat fs child).Fs.kind <> Layout.Directory then
          Alcotest.failf "%s: expected directory" child;
        compare_tree fs spec child
      | Some (Spec.File id) ->
        let expect = Spec.content spec id in
        let st = Fs.stat fs child in
        if st.Fs.kind <> Layout.Regular then
          Alcotest.failf "%s: expected regular file" child;
        if st.Fs.size <> Bytes.length expect then
          Alcotest.failf "%s: size %d, spec %d" child st.Fs.size
            (Bytes.length expect);
        if st.Fs.nlinks <> Spec.refcount spec id then
          Alcotest.failf "%s: nlinks %d, spec %d" child st.Fs.nlinks
            (Spec.refcount spec id);
        let got = Fs.read_file fs child ~off:0 ~len:(Bytes.length expect) in
        if not (Bytes.equal got expect) then
          Alcotest.failf "%s: content mismatch" child
      | None -> Alcotest.failf "%s: in fs but not in spec" child)
    fs_children

let fs_model_scenario seed =
  let _, lld = fresh_lld () in
  let fs = Fs.mkfs ~inode_count:512 lld in
  let spec = Spec.empty () in
  let rng = Rng.create ~seed in
  for _ = 1 to 120 do
    apply_both fs spec (random_op rng)
  done;
  compare_tree fs spec "/";
  let report = Fsck.run fs in
  if not (Fsck.ok report) then
    Alcotest.failf "fsck: %a" Fsck.pp_report report;
  (* flush, remount: the persistent state must be the same tree *)
  Fs.flush fs;
  let fs2 = Fs.mount (Fs.lld fs) in
  compare_tree fs2 spec "/";
  true

let fs_model =
  QCheck.Test.make ~name:"FS equals spec under random operations" ~count:30
    QCheck.(int_range 0 100_000)
    fs_model_scenario

let () =
  Alcotest.run "lld_fs_props"
    [ ("model", [ QCheck_alcotest.to_alcotest fs_model ]) ]
