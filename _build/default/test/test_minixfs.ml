open Helpers
module Fs = Lld_minixfs.Fs
module Fsck = Lld_minixfs.Fsck
module Layout = Lld_minixfs.Layout

let fresh_fs ?(fs_config = Fs.config_new) ?(config = Config.default) () =
  let disk, lld = fresh_lld ~config () in
  (disk, Fs.mkfs ~config:fs_config ~inode_count:1024 lld)

let payload n = Bytes.init n (fun i -> Char.chr ((i * 7) land 0xff))

let test_mkfs_and_mount () =
  let disk, fs = fresh_fs () in
  Fs.flush fs;
  let fs2 = Fs.mount (Fs.lld fs) in
  Alcotest.(check (list string)) "root empty" [] (Fs.readdir fs2 "/");
  ignore disk

let test_create_stat () =
  let _, fs = fresh_fs () in
  Fs.create fs "/hello";
  let st = Fs.stat fs "/hello" in
  Alcotest.(check bool) "regular" true (st.Fs.kind = Layout.Regular);
  Alcotest.(check int) "empty" 0 st.Fs.size;
  Alcotest.(check int) "one link" 1 st.Fs.nlinks;
  Alcotest.(check bool) "exists" true (Fs.exists fs "/hello");
  Alcotest.(check bool) "other missing" false (Fs.exists fs "/other")

let test_create_duplicate_rejected () =
  let _, fs = fresh_fs () in
  Fs.create fs "/f";
  Alcotest.check_raises "duplicate" (Fs.Already_exists "/f") (fun () ->
      Fs.create fs "/f")

let test_invalid_names_rejected () =
  let _, fs = fresh_fs () in
  Alcotest.check_raises "too long" (Fs.Invalid_name "/waaaaaaaaaaaaaytoolong")
    (fun () -> Fs.create fs "/waaaaaaaaaaaaaytoolong");
  Alcotest.check_raises "relative" (Fs.Invalid_name "relative") (fun () ->
      Fs.create fs "relative")

let test_write_read_roundtrip () =
  let _, fs = fresh_fs () in
  Fs.create fs "/data";
  let body = payload 1024 in
  Fs.write_file fs "/data" ~off:0 body;
  Alcotest.(check int) "size" 1024 (Fs.stat fs "/data").Fs.size;
  Alcotest.(check bytes) "roundtrip" body
    (Fs.read_file fs "/data" ~off:0 ~len:1024)

let test_write_multiblock () =
  let _, fs = fresh_fs () in
  Fs.create fs "/big";
  let body = payload 10240 (* a paper "10 KB file": 3 blocks *) in
  Fs.write_file fs "/big" ~off:0 body;
  Alcotest.(check bytes) "all back" body
    (Fs.read_file fs "/big" ~off:0 ~len:10240);
  (* partial reads across block boundaries *)
  Alcotest.(check bytes) "middle window" (Bytes.sub body 4000 300)
    (Fs.read_file fs "/big" ~off:4000 ~len:300);
  let st = Fs.stat fs "/big" in
  Alcotest.(check int) "size" 10240 st.Fs.size

let test_write_at_offset_and_sparse () =
  let _, fs = fresh_fs () in
  Fs.create fs "/sparse";
  Fs.write_file fs "/sparse" ~off:9000 (Bytes.of_string "tail");
  Alcotest.(check int) "size" 9004 (Fs.stat fs "/sparse").Fs.size;
  let hole = Fs.read_file fs "/sparse" ~off:0 ~len:10 in
  Alcotest.(check bytes) "hole reads zero" (Bytes.make 10 '\000') hole;
  Alcotest.(check bytes) "tail" (Bytes.of_string "tail")
    (Fs.read_file fs "/sparse" ~off:9000 ~len:4)

let test_overwrite_shrinks_nothing () =
  let _, fs = fresh_fs () in
  Fs.create fs "/f";
  Fs.write_file fs "/f" ~off:0 (payload 5000);
  Fs.write_file fs "/f" ~off:0 (Bytes.of_string "XY");
  Alcotest.(check int) "size unchanged" 5000 (Fs.stat fs "/f").Fs.size;
  Alcotest.(check bytes) "prefix overwritten" (Bytes.of_string "XY")
    (Fs.read_file fs "/f" ~off:0 ~len:2)

let test_read_past_eof_short () =
  let _, fs = fresh_fs () in
  Fs.create fs "/f";
  Fs.write_file fs "/f" ~off:0 (Bytes.of_string "abc");
  Alcotest.(check int) "short read" 3
    (Bytes.length (Fs.read_file fs "/f" ~off:0 ~len:100));
  Alcotest.(check int) "past eof empty" 0
    (Bytes.length (Fs.read_file fs "/f" ~off:10 ~len:5))

let test_unlink () =
  let _, fs = fresh_fs () in
  Fs.create fs "/f";
  Fs.write_file fs "/f" ~off:0 (payload 8192);
  let allocated_before = Lld.allocated_blocks (Fs.lld fs) in
  Fs.unlink fs "/f";
  Alcotest.(check bool) "gone" false (Fs.exists fs "/f");
  Alcotest.(check bool) "blocks released" true
    (Lld.allocated_blocks (Fs.lld fs) < allocated_before);
  Alcotest.check_raises "unlink missing" (Fs.Not_found_path "/f") (fun () ->
      Fs.unlink fs "/f")

let test_unlink_policies_equivalent () =
  (* both deletion policies free the same state; only the cost differs *)
  let run fs_config =
    let _, fs = fresh_fs ~fs_config () in
    Fs.create fs "/f";
    Fs.write_file fs "/f" ~off:0 (payload 10240);
    Fs.unlink fs "/f";
    let lld = Fs.lld fs in
    ( Lld.allocated_blocks lld,
      (Lld.counters lld).Lld_core.Counters.pred_search_hops )
  in
  let alloc_naive, hops_naive = run Fs.config_new in
  let alloc_improved, hops_improved = run Fs.config_new_delete in
  Alcotest.(check int) "same residual allocation" alloc_naive alloc_improved;
  Alcotest.(check bool)
    (Printf.sprintf "naive deletion searches more (%d vs %d)" hops_naive
       hops_improved)
    true
    (hops_naive > hops_improved)

let test_directories () =
  let _, fs = fresh_fs () in
  Fs.mkdir fs "/d";
  Fs.mkdir fs "/d/sub";
  Fs.create fs "/d/f1";
  Fs.create fs "/d/sub/f2";
  Alcotest.(check (list string)) "root" [ "d" ] (Fs.readdir fs "/");
  Alcotest.(check (list string)) "d" [ "f1"; "sub" ] (Fs.readdir fs "/d");
  Alcotest.(check (list string)) "sub" [ "f2" ] (Fs.readdir fs "/d/sub");
  Alcotest.(check bool) "dir kind" true
    ((Fs.stat fs "/d").Fs.kind = Layout.Directory)

let test_rmdir () =
  let _, fs = fresh_fs () in
  Fs.mkdir fs "/d";
  Fs.create fs "/d/f";
  Alcotest.check_raises "not empty" (Fs.Directory_not_empty "/d") (fun () ->
      Fs.rmdir fs "/d");
  Fs.unlink fs "/d/f";
  Fs.rmdir fs "/d";
  Alcotest.(check bool) "gone" false (Fs.exists fs "/d")

let test_kind_mismatches () =
  let _, fs = fresh_fs () in
  Fs.mkdir fs "/d";
  Fs.create fs "/f";
  Alcotest.check_raises "unlink dir" (Fs.Is_a_directory "/d") (fun () ->
      Fs.unlink fs "/d");
  Alcotest.check_raises "rmdir file" (Fs.Not_a_directory "/f") (fun () ->
      Fs.rmdir fs "/f");
  Alcotest.check_raises "write dir" (Fs.Is_a_directory "/d") (fun () ->
      Fs.write_file fs "/d" ~off:0 (Bytes.of_string "x"));
  Alcotest.check_raises "descend into file" (Fs.Not_a_directory "/f/x")
    (fun () -> ignore (Fs.stat fs "/f/x"))

let test_many_files_one_dir () =
  let _, fs = fresh_fs () in
  let n = 300 in
  for i = 0 to n - 1 do
    let path = Printf.sprintf "/f%04d" i in
    Fs.create fs path;
    Fs.write_file fs path ~off:0 (payload ((i mod 5) * 100))
  done;
  Alcotest.(check int) "all listed" n (List.length (Fs.readdir fs "/"));
  for i = 0 to n - 1 do
    let path = Printf.sprintf "/f%04d" i in
    let expect = (i mod 5) * 100 in
    Alcotest.(check int) path expect (Fs.stat fs path).Fs.size
  done;
  (* delete every other file; directory stays consistent *)
  for i = 0 to n - 1 do
    if i mod 2 = 0 then Fs.unlink fs (Printf.sprintf "/f%04d" i)
  done;
  Alcotest.(check int) "half left" (n / 2) (List.length (Fs.readdir fs "/"));
  let report = Fsck.run fs in
  Alcotest.(check bool)
    (Format.asprintf "fsck clean: %a" Fsck.pp_report report)
    true (Fsck.ok report)

let test_inode_exhaustion () =
  let disk, lld = fresh_lld () in
  ignore disk;
  let fs = Fs.mkfs ~inode_count:140 lld in
  (* 128 inodes per block; ino 0 reserved, 1 is root -> 138 creatable *)
  Alcotest.check_raises "out of inodes" Fs.Out_of_inodes (fun () ->
      for i = 0 to 200 do
        Fs.create fs (Printf.sprintf "/f%03d" i)
      done)

let test_remount_preserves_everything () =
  let disk, fs = fresh_fs () in
  ignore disk;
  Fs.mkdir fs "/d";
  Fs.create fs "/d/keep";
  Fs.write_file fs "/d/keep" ~off:0 (payload 6000);
  Fs.flush fs;
  let fs2 = Fs.mount (Fs.lld fs) in
  Alcotest.(check bytes) "data preserved" (payload 6000)
    (Fs.read_file fs2 "/d/keep" ~off:0 ~len:6000);
  Alcotest.(check (list string)) "tree preserved" [ "keep" ]
    (Fs.readdir fs2 "/d")

let test_fs_on_sequential_lld () =
  (* the "old" configuration: unmodified Minix on sequential LLD *)
  let config = Config.old_lld in
  let disk, lld = fresh_lld ~config () in
  ignore disk;
  let fs = Fs.mkfs ~config:Fs.config_old ~inode_count:1024 lld in
  Fs.create fs "/f";
  Fs.write_file fs "/f" ~off:0 (payload 2048);
  Alcotest.(check bytes) "works without ARUs" (payload 2048)
    (Fs.read_file fs "/f" ~off:0 ~len:2048);
  Fs.unlink fs "/f";
  Alcotest.(check bool) "deleted" false (Fs.exists fs "/f")

let test_fsck_clean_on_fresh_fs () =
  let _, fs = fresh_fs () in
  Fs.mkdir fs "/a";
  Fs.create fs "/a/f";
  Fs.write_file fs "/a/f" ~off:0 (payload 5000);
  let report = Fsck.run fs in
  Alcotest.(check bool)
    (Format.asprintf "clean: %a" Fsck.pp_report report)
    true (Fsck.ok report);
  Alcotest.(check int) "inodes checked" 1023 report.Fsck.checked_inodes


(* ------------------------------------------------------------------ *)
(* rename / link / truncate                                            *)

let test_rename_basic () =
  let _, fs = fresh_fs () in
  Fs.mkdir fs "/a";
  Fs.mkdir fs "/b";
  Fs.create fs "/a/f";
  Fs.write_file fs "/a/f" ~off:0 (payload 3000);
  Fs.rename fs "/a/f" "/b/g";
  Alcotest.(check bool) "source gone" false (Fs.exists fs "/a/f");
  Alcotest.(check bytes) "content moved" (payload 3000)
    (Fs.read_file fs "/b/g" ~off:0 ~len:3000);
  Alcotest.(check bool) "still consistent" true (Fsck.ok (Fsck.run fs))

let test_rename_replaces_file () =
  let _, fs = fresh_fs () in
  Fs.create fs "/old";
  Fs.write_file fs "/old" ~off:0 (payload 5000);
  Fs.create fs "/new";
  Fs.write_file fs "/new" ~off:0 (payload 100);
  let before = Lld.allocated_blocks (Fs.lld fs) in
  Fs.rename fs "/new" "/old";
  Alcotest.(check bool) "source gone" false (Fs.exists fs "/new");
  Alcotest.(check int) "replacement visible" 100 (Fs.stat fs "/old").Fs.size;
  Alcotest.(check bool) "replaced file's blocks freed" true
    (Lld.allocated_blocks (Fs.lld fs) < before);
  Alcotest.(check bool) "consistent" true (Fsck.ok (Fsck.run fs))

let test_rename_directory () =
  let _, fs = fresh_fs () in
  Fs.mkdir fs "/d";
  Fs.create fs "/d/f";
  Fs.mkdir fs "/e";
  Fs.rename fs "/d" "/e/moved";
  Alcotest.(check bool) "moved" true (Fs.exists fs "/e/moved/f");
  Alcotest.check_raises "cannot move into own subtree"
    (Fs.Invalid_name "/e/moved/inner") (fun () ->
      Fs.rename fs "/e/moved" "/e/moved/inner");
  Alcotest.check_raises "cannot replace a directory" (Fs.Is_a_directory "/e")
    (fun () ->
      Fs.create fs "/f0";
      Fs.rename fs "/f0" "/e")

let test_rename_same_file_noop () =
  let _, fs = fresh_fs () in
  Fs.create fs "/f";
  Fs.link fs "/f" "/g";
  Fs.rename fs "/f" "/g" (* POSIX: both names link the same file *);
  Alcotest.(check bool) "f still there" true (Fs.exists fs "/f");
  Alcotest.(check bool) "g still there" true (Fs.exists fs "/g");
  Alcotest.(check bool) "consistent" true (Fsck.ok (Fsck.run fs))

let test_hard_links () =
  let _, fs = fresh_fs () in
  Fs.create fs "/f";
  Fs.write_file fs "/f" ~off:0 (payload 2000);
  Fs.link fs "/f" "/g";
  Alcotest.(check int) "nlinks" 2 (Fs.stat fs "/f").Fs.nlinks;
  Alcotest.(check int) "same inode" (Fs.stat fs "/f").Fs.ino
    (Fs.stat fs "/g").Fs.ino;
  (* writes through one name are visible through the other *)
  Fs.write_file fs "/g" ~off:0 (Bytes.of_string "XY");
  Alcotest.(check bytes) "shared content" (Bytes.of_string "XY")
    (Fs.read_file fs "/f" ~off:0 ~len:2);
  (* unlinking one name keeps the data *)
  Fs.unlink fs "/f";
  Alcotest.(check int) "nlinks back to 1" 1 (Fs.stat fs "/g").Fs.nlinks;
  Alcotest.(check int) "data survives" 2000 (Fs.stat fs "/g").Fs.size;
  Fs.unlink fs "/g";
  Alcotest.(check bool) "consistent after last unlink" true
    (Fsck.ok (Fsck.run fs))

let test_link_restrictions () =
  let _, fs = fresh_fs () in
  Fs.mkdir fs "/d";
  Alcotest.check_raises "no dir hard links" (Fs.Is_a_directory "/d") (fun () ->
      Fs.link fs "/d" "/d2");
  Fs.create fs "/f";
  Alcotest.check_raises "target must not exist" (Fs.Already_exists "/f")
    (fun () -> Fs.link fs "/f" "/f")

let test_truncate_shrink () =
  let _, fs = fresh_fs () in
  Fs.create fs "/f";
  Fs.write_file fs "/f" ~off:0 (payload 10000);
  let before = Lld.allocated_blocks (Fs.lld fs) in
  Fs.truncate fs "/f" ~size:4500;
  Alcotest.(check int) "size" 4500 (Fs.stat fs "/f").Fs.size;
  Alcotest.(check bool) "trailing blocks freed" true
    (Lld.allocated_blocks (Fs.lld fs) < before);
  Alcotest.(check bytes) "kept prefix" (Bytes.sub (payload 10000) 0 4500)
    (Fs.read_file fs "/f" ~off:0 ~len:4500);
  (* re-extending reads zeroes, not stale bytes *)
  Fs.truncate fs "/f" ~size:6000;
  Alcotest.(check bytes) "extension zeroed" (Bytes.make 1000 '\000')
    (Fs.read_file fs "/f" ~off:4600 ~len:1000);
  Alcotest.(check bool) "consistent" true (Fsck.ok (Fsck.run fs))

let test_truncate_to_zero_and_extend () =
  let _, fs = fresh_fs () in
  Fs.create fs "/f";
  Fs.write_file fs "/f" ~off:0 (payload 8192);
  Fs.truncate fs "/f" ~size:0;
  Alcotest.(check int) "empty" 0 (Fs.stat fs "/f").Fs.size;
  Fs.truncate fs "/f" ~size:1000;
  Alcotest.(check bytes) "sparse extension" (Bytes.make 1000 '\000')
    (Fs.read_file fs "/f" ~off:0 ~len:1000);
  Alcotest.(check bool) "consistent" true (Fsck.ok (Fsck.run fs))

let () =
  Alcotest.run "lld_minixfs"
    [
      ( "lifecycle",
        [
          Alcotest.test_case "mkfs and mount" `Quick test_mkfs_and_mount;
          Alcotest.test_case "create and stat" `Quick test_create_stat;
          Alcotest.test_case "duplicate rejected" `Quick
            test_create_duplicate_rejected;
          Alcotest.test_case "invalid names rejected" `Quick
            test_invalid_names_rejected;
          Alcotest.test_case "remount preserves everything" `Quick
            test_remount_preserves_everything;
          Alcotest.test_case "inode exhaustion" `Quick test_inode_exhaustion;
          Alcotest.test_case "works on sequential LLD" `Quick
            test_fs_on_sequential_lld;
        ] );
      ( "file-io",
        [
          Alcotest.test_case "write/read roundtrip" `Quick
            test_write_read_roundtrip;
          Alcotest.test_case "multi-block files" `Quick test_write_multiblock;
          Alcotest.test_case "offset writes and holes" `Quick
            test_write_at_offset_and_sparse;
          Alcotest.test_case "overwrite keeps size" `Quick
            test_overwrite_shrinks_nothing;
          Alcotest.test_case "short reads at EOF" `Quick
            test_read_past_eof_short;
        ] );
      ( "deletion",
        [
          Alcotest.test_case "unlink releases blocks" `Quick test_unlink;
          Alcotest.test_case "deletion policies equivalent" `Quick
            test_unlink_policies_equivalent;
        ] );
      ( "directories",
        [
          Alcotest.test_case "nested directories" `Quick test_directories;
          Alcotest.test_case "rmdir" `Quick test_rmdir;
          Alcotest.test_case "kind mismatches" `Quick test_kind_mismatches;
          Alcotest.test_case "many files in one directory" `Quick
            test_many_files_one_dir;
        ] );
      ( "rename-link-truncate",
        [
          Alcotest.test_case "rename basic" `Quick test_rename_basic;
          Alcotest.test_case "rename replaces a file" `Quick
            test_rename_replaces_file;
          Alcotest.test_case "rename directories" `Quick test_rename_directory;
          Alcotest.test_case "rename between links is a no-op" `Quick
            test_rename_same_file_noop;
          Alcotest.test_case "hard links" `Quick test_hard_links;
          Alcotest.test_case "link restrictions" `Quick test_link_restrictions;
          Alcotest.test_case "truncate shrink" `Quick test_truncate_shrink;
          Alcotest.test_case "truncate to zero and extend" `Quick
            test_truncate_to_zero_and_extend;
        ] );
      ( "fsck",
        [
          Alcotest.test_case "clean on healthy fs" `Quick
            test_fsck_clean_on_fresh_fs;
        ] );
    ]
