(* Workload generators and the experiment harness: smoke-level checks
   that the reproduction machinery itself behaves (phases measure what
   they claim, variants differ the way the paper says, reports render). *)

module Geometry = Lld_disk.Geometry
module Config = Lld_core.Config
module Lld = Lld_core.Lld
module Setup = Lld_workload.Setup
module Smallfile = Lld_workload.Smallfile
module Largefile = Lld_workload.Largefile
module Aru_churn = Lld_workload.Aru_churn
module Concurrent = Lld_workload.Concurrent
module Experiment = Lld_harness.Experiment
module Report = Lld_harness.Report

let geom = Geometry.v ~num_segments:64 ()

let tiny_scale =
  { Experiment.files = 0.01; bytes = 0.01; arus = 0.002; geom }

let test_setup_variants () =
  List.iter
    (fun v ->
      let inst = Setup.make ~geom ~inode_count:512 v in
      Alcotest.(check int)
        (Setup.variant_label v ^ ": clock reset after setup")
        0
        (Lld_sim.Clock.now_ns inst.Setup.clock);
      Alcotest.(check bool) "fs mounted" true
        (Lld_minixfs.Fs.readdir inst.Setup.fs "/" = []))
    Setup.all_variants

let test_smallfile_phases () =
  let inst = Setup.make ~geom ~inode_count:512 Setup.New in
  let p = { Smallfile.file_count = 60; file_bytes = 1024; dirs = 1 } in
  let r = Smallfile.run inst p in
  Alcotest.(check int) "files created" 60 r.Smallfile.create_write.Smallfile.files;
  Alcotest.(check bool) "create time positive" true
    (r.Smallfile.create_write.Smallfile.elapsed_ns > 0);
  Alcotest.(check bool) "read faster than create" true
    (r.Smallfile.read.Smallfile.files_per_sec
    > r.Smallfile.create_write.Smallfile.files_per_sec);
  (* after the delete phase everything is gone *)
  Alcotest.(check (list string)) "all deleted" []
    (Lld_minixfs.Fs.readdir inst.Setup.fs "/")

let test_smallfile_dirs () =
  let inst = Setup.make ~geom ~inode_count:512 Setup.New in
  let p = { Smallfile.file_count = 30; file_bytes = 1024; dirs = 3 } in
  let r = Smallfile.run inst p in
  Alcotest.(check int) "ran" 30 r.Smallfile.delete.Smallfile.files;
  Alcotest.(check int) "directories remain" 3
    (List.length (Lld_minixfs.Fs.readdir inst.Setup.fs "/"))

let test_smallfile_scaled () =
  let p = Smallfile.scaled Smallfile.paper_1k 0.01 in
  Alcotest.(check int) "scaled count" 100 p.Smallfile.file_count;
  Alcotest.(check int) "size unchanged" 1024 p.Smallfile.file_bytes;
  Alcotest.(check int) "never zero" 1
    (Smallfile.scaled Smallfile.paper_10k 0.0001).Smallfile.file_count

let test_largefile_phases () =
  let inst = Setup.make ~geom ~inode_count:64 Setup.New in
  let p = Largefile.scaled Largefile.paper 0.01 in
  let r = Largefile.run inst p in
  List.iter
    (fun (ph : Largefile.phase) ->
      Alcotest.(check bool)
        (ph.Largefile.label ^ " throughput positive")
        true
        (ph.Largefile.mb_per_sec > 0.))
    (Largefile.phases r);
  (* writes are log-structured: sequential and random writes comparable;
     random reads much slower than sequential ones *)
  Alcotest.(check bool) "write2 within 2x of write1" true
    (r.Largefile.write2.Largefile.mb_per_sec
    > r.Largefile.write1.Largefile.mb_per_sec /. 2.);
  Alcotest.(check bool) "read2 slower than read1" true
    (r.Largefile.read2.Largefile.mb_per_sec
    < r.Largefile.read1.Largefile.mb_per_sec)

let test_largefile_scaled_rounds_to_blocks () =
  let p = Largefile.scaled Largefile.paper 0.013 in
  Alcotest.(check int) "block multiple" 0 (p.Largefile.file_bytes mod 4096);
  Alcotest.(check bool) "positive" true (p.Largefile.file_bytes > 0)

let test_aru_churn () =
  let _, lld = Setup.make_raw ~geom Setup.New in
  let r = Aru_churn.run lld { Aru_churn.count = 5000 } in
  Alcotest.(check int) "count" 5000 r.Aru_churn.count;
  Alcotest.(check bool) "latency sane" true
    (r.Aru_churn.latency_us > 10. && r.Aru_churn.latency_us < 1000.);
  Alcotest.(check bool) "commit records flushed" true
    (r.Aru_churn.segments_written >= 1)

let test_aru_churn_old_cheaper () =
  let run v =
    let _, lld = Setup.make_raw ~geom v in
    (Aru_churn.run lld { Aru_churn.count = 2000 }).Aru_churn.latency_us
  in
  let old = run Setup.Old in
  let new_ = run Setup.New in
  Alcotest.(check bool)
    (Printf.sprintf "old (%.1f) cheaper than new (%.1f)" old new_)
    true (old < new_)

let test_concurrent_equal_ops () =
  let p = { Concurrent.streams = 4; ops_per_stream = 50; seed = 3 } in
  let run f =
    let _, lld = Setup.make_raw ~geom Setup.New in
    f lld p
  in
  let inter = run Concurrent.run_interleaved in
  let serial = run Concurrent.run_serial in
  Alcotest.(check int) "same op count" inter.Concurrent.ops serial.Concurrent.ops;
  Alcotest.(check bool) "interleaving keeps more shadows" true
    (inter.Concurrent.record_creates >= serial.Concurrent.record_creates)

let test_mixed_workload_phases () =
  let inst = Setup.make ~geom ~inode_count:512 Setup.New in
  let p = { Lld_workload.Mixed.default with Lld_workload.Mixed.dirs = 5; files_per_dir = 6 } in
  let r = Lld_workload.Mixed.run inst p in
  Alcotest.(check int) "five phases" 5 (List.length r.Lld_workload.Mixed.phases);
  List.iter
    (fun (ph : Lld_workload.Mixed.phase) ->
      Alcotest.(check bool)
        (ph.Lld_workload.Mixed.label ^ " positive")
        true
        (ph.Lld_workload.Mixed.ops > 0 && ph.Lld_workload.Mixed.ops_per_sec > 0.))
    r.Lld_workload.Mixed.phases;
  (* the tree the workload built is consistent *)
  Alcotest.(check bool) "fsck clean" true
    (Lld_minixfs.Fsck.ok (Lld_minixfs.Fsck.run inst.Setup.fs))

let test_torture_runs_quickly () =
  let r =
    Lld_workload.Torture.run
      { Lld_workload.Torture.seed = 1; operations = 60; crash_points = 3 }
  in
  Alcotest.(check int) "three outcomes" 3 (List.length r.Lld_workload.Torture.outcomes);
  Alcotest.(check bool) "consistent" true r.Lld_workload.Torture.all_consistent

let test_experiment_figure5_shape () =
  let rows = Experiment.figure5 tiny_scale in
  Alcotest.(check int) "3 variants x 2 sizes" 6 (List.length rows);
  List.iter
    (fun r ->
      let res = r.Experiment.f5_result in
      Alcotest.(check bool) "throughputs positive" true
        (res.Smallfile.create_write.Smallfile.files_per_sec > 0.
        && res.Smallfile.read.Smallfile.files_per_sec > 0.
        && res.Smallfile.delete.Smallfile.files_per_sec > 0.))
    rows;
  (* the old variant must win creates and deletes in both sizes *)
  List.iter
    (fun p ->
      let by v =
        List.find
          (fun r ->
            r.Experiment.f5_variant = v
            && r.Experiment.f5_result.Smallfile.params = p)
          rows
      in
      let tp sel r = (sel r.Experiment.f5_result : Smallfile.phase).Smallfile.files_per_sec in
      Alcotest.(check bool) "old creates faster" true
        (tp (fun r -> r.Smallfile.create_write) (by Setup.Old)
        >= tp (fun r -> r.Smallfile.create_write) (by Setup.New));
      Alcotest.(check bool) "old deletes faster" true
        (tp (fun r -> r.Smallfile.delete) (by Setup.Old)
        >= tp (fun r -> r.Smallfile.delete) (by Setup.New));
      Alcotest.(check bool) "improved deletion helps" true
        (tp (fun r -> r.Smallfile.delete) (by Setup.New_delete)
        >= tp (fun r -> r.Smallfile.delete) (by Setup.New)))
    (List.sort_uniq compare
       (List.map (fun r -> r.Experiment.f5_result.Smallfile.params) rows))

let test_experiment_prints () =
  (* every printer renders without raising *)
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  let f5 = Experiment.figure5 tiny_scale in
  Experiment.print_figure5 ppf f5;
  Experiment.print_summary ppf f5;
  Experiment.print_delete_ablation ppf f5;
  Experiment.print_figure6 ppf (Experiment.figure6 tiny_scale);
  Experiment.print_aru_latency ppf (Experiment.aru_latency tiny_scale);
  Format.pp_print_flush ppf ();
  let out = Buffer.contents buf in
  let contains needle =
    let nl = String.length needle and ol = String.length out in
    let rec scan i = i + nl <= ol && (String.sub out i nl = needle || scan (i + 1)) in
    scan 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("output mentions " ^ needle) true (contains needle))
    [ "Figure 5"; "Figure 6"; "ARU latency" ]

let test_report_table_alignment () =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Report.table ppf ~title:"T" ~header:[ "a"; "bb" ]
    [ [ "xxx"; "y" ]; [ "z"; "wwww" ] ];
  Format.pp_print_flush ppf ();
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' (Buffer.contents buf))
  in
  Alcotest.(check int) "title + rule + header + 2 rows" 5 (List.length lines)

let test_report_pct () =
  Alcotest.(check string) "slower" "+10.0%" (Report.pct ~baseline:100. 90.);
  Alcotest.(check string) "faster" "-10.0%" (Report.pct ~baseline:100. 110.);
  Alcotest.(check string) "zero baseline" "n/a" (Report.pct ~baseline:0. 1.)

let () =
  Alcotest.run "lld_workload"
    [
      ( "setup",
        [ Alcotest.test_case "variants" `Quick test_setup_variants ] );
      ( "smallfile",
        [
          Alcotest.test_case "phases" `Quick test_smallfile_phases;
          Alcotest.test_case "directories" `Quick test_smallfile_dirs;
          Alcotest.test_case "scaling" `Quick test_smallfile_scaled;
        ] );
      ( "largefile",
        [
          Alcotest.test_case "phases" `Quick test_largefile_phases;
          Alcotest.test_case "scaling rounds to blocks" `Quick
            test_largefile_scaled_rounds_to_blocks;
        ] );
      ( "aru-churn",
        [
          Alcotest.test_case "latency" `Quick test_aru_churn;
          Alcotest.test_case "old cheaper than new" `Quick
            test_aru_churn_old_cheaper;
        ] );
      ( "concurrent",
        [ Alcotest.test_case "interleaved vs serial" `Quick test_concurrent_equal_ops ]
      );
      ( "mixed-and-torture",
        [
          Alcotest.test_case "mixed workload phases" `Quick
            test_mixed_workload_phases;
          Alcotest.test_case "torture smoke" `Quick test_torture_runs_quickly;
        ] );
      ( "harness",
        [
          Alcotest.test_case "figure 5 shape" `Slow test_experiment_figure5_shape;
          Alcotest.test_case "printers render" `Slow test_experiment_prints;
          Alcotest.test_case "table alignment" `Quick test_report_table_alignment;
          Alcotest.test_case "percent formatting" `Quick test_report_pct;
        ] );
    ]
