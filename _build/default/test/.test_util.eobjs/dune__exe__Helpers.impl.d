test/helpers.ml: Alcotest Bytes Fmt List Lld_core Lld_disk Lld_sim Printf String
