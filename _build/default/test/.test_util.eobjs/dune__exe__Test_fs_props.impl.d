test/test_fs_props.ml: Alcotest Bytes Char Helpers List Lld_minixfs Lld_sim Printf QCheck QCheck_alcotest String
