test/test_aru.mli:
