test/test_workload.ml: Alcotest Buffer Format List Lld_core Lld_disk Lld_harness Lld_minixfs Lld_sim Lld_workload Printf String
