test/test_props.ml: Alcotest Array Bytes Char Config Disk Errors Helpers List Lld Lld_core Lld_disk Lld_sim Lld_util Option QCheck QCheck_alcotest String Summary Types
