test/test_segment.ml: Alcotest Bytes Char List Lld_core Lld_disk Printf
