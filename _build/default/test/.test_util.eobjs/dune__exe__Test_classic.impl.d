test/test_classic.ml: Alcotest Bytes Char Lld_core Lld_disk Lld_minixdisk Lld_minixfs Lld_sim Printf
