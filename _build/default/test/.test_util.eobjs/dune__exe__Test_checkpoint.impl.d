test/test_checkpoint.ml: Alcotest Bytes Disk Errors Geometry Helpers List Lld_core Lld_disk Types
