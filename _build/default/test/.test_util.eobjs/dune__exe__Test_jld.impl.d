test/test_jld.ml: Alcotest Array Bytes Char Format Fun List Lld_core Lld_disk Lld_jld Lld_minixfs Lld_sim Printf
