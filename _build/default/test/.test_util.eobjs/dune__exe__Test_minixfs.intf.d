test/test_minixfs.mli:
