test/test_disk.ml: Alcotest Bytes Lld_disk Lld_sim Printf
