test/test_util.ml: Alcotest Bytes Int64 List Lld_util QCheck QCheck_alcotest
