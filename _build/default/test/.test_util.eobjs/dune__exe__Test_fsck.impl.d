test/test_fsck.ml: Alcotest Bytes Char Config Disk Format Geometry Helpers List Lld Lld_disk Lld_minixfs Lld_workload Printf
