test/test_jld.mli:
