test/test_lld.ml: Alcotest Bytes Config Disk Errors Geometry Helpers List Lld Lld_core Lld_sim Option Printf Summary Types
