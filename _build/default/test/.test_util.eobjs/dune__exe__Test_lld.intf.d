test/test_lld.mli:
