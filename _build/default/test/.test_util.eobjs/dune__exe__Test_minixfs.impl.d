test/test_minixfs.ml: Alcotest Bytes Char Config Format Helpers List Lld Lld_core Lld_minixfs Printf
