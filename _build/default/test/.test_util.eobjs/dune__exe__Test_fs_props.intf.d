test/test_fs_props.mli:
