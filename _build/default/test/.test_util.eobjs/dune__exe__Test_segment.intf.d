test/test_segment.mli:
