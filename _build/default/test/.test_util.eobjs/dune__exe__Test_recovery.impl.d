test/test_recovery.ml: Alcotest Array Bytes Config Disk Errors Geometry Helpers List Lld Lld_core Lld_disk Printf Summary
