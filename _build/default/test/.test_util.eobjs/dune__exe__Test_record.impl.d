test/test_record.ml: Alcotest Bytes Hashtbl List Lld_core Option Printf
