test/test_aru.ml: Alcotest Config Errors Helpers List Lld Lld_core Option Printf Summary Types
