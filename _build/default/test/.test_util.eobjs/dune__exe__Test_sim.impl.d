test/test_sim.ml: Alcotest Array Fun Int64 List Lld_sim Printf QCheck QCheck_alcotest
