open Helpers
module Checkpoint = Lld_core.Checkpoint
module Disk_layout = Lld_core.Disk_layout
module Fault = Lld_disk.Fault

let snapshot ?(ckpt_id = 5) ?(blocks = []) ?(lists = []) ?(pending = [])
    ?(free_order = []) () =
  {
    Checkpoint.ckpt_id;
    covered_seq = 42;
    next_seq = 43;
    stamp = 1000;
    next_aru = 9;
    blocks;
    lists;
    pending;
    free_order;
  }

let block_entry i =
  {
    Checkpoint.b_id = i;
    b_member = (if i mod 2 = 0 then Some (i / 2) else None);
    b_succ = (if i mod 3 = 0 then Some (i + 1) else None);
    b_phys = (if i mod 5 = 0 then None else Some (i mod 30, i mod 128));
    b_stamp = i * 17;
  }

let list_entry i =
  {
    Checkpoint.l_id = i;
    l_first = Some (i * 2);
    l_last = Some ((i * 2) + 9);
    l_stamp = i * 31;
    l_owner = (if i mod 4 = 0 then Some (i + 100) else None);
  }

let test_encode_decode_empty () =
  let s = snapshot () in
  Alcotest.(check bool) "roundtrip" true (Checkpoint.decode (Checkpoint.encode s) = s)

let test_encode_decode_populated () =
  let s =
    snapshot
      ~blocks:(List.init 50 block_entry)
      ~lists:(List.init 20 list_entry)
      ~pending:
        [
          ( 3,
            [
              {
                Checkpoint.pe_op =
                  Lld_core.Summary.Dealloc
                    { block = Types.Block_id.of_int 9; stamp = 77 };
                pe_seg = 12;
              };
            ] );
        ]
      ~free_order:[ 10; 11; 12; 13 ] ()
  in
  Alcotest.(check bool) "roundtrip" true (Checkpoint.decode (Checkpoint.encode s) = s)

let test_decode_rejects_garbage () =
  Alcotest.check_raises "truncated"
    (Errors.Corrupt "truncated checkpoint payload") (fun () ->
      ignore (Checkpoint.decode (Bytes.make 3 'x')))

let test_region_write_read () =
  let disk = fresh_disk () in
  let s = snapshot ~blocks:(List.init 10 block_entry) () in
  Checkpoint.write disk ~region:0 s;
  Alcotest.(check bool) "region 0 readable" true
    (Checkpoint.read_region disk ~region:0 = Some s);
  Alcotest.(check bool) "region 1 still empty" true
    (Checkpoint.read_region disk ~region:1 = None)

let test_read_best_prefers_newer () =
  let disk = fresh_disk () in
  Checkpoint.write disk ~region:0 (snapshot ~ckpt_id:5 ());
  Checkpoint.write disk ~region:1 (snapshot ~ckpt_id:9 ());
  (match Checkpoint.read_best disk with
  | Some s -> Alcotest.(check int) "newest wins" 9 s.Checkpoint.ckpt_id
  | None -> Alcotest.fail "no checkpoint found");
  Checkpoint.write disk ~region:0 (snapshot ~ckpt_id:12 ());
  match Checkpoint.read_best disk with
  | Some s -> Alcotest.(check int) "alternation" 12 s.Checkpoint.ckpt_id
  | None -> Alcotest.fail "no checkpoint found"

let test_torn_checkpoint_write_falls_back () =
  let disk = fresh_disk () in
  Checkpoint.write disk ~region:0 (snapshot ~ckpt_id:5 ());
  Checkpoint.write disk ~region:1 (snapshot ~ckpt_id:6 ());
  (* region 0 is being rewritten with ckpt 7 when power fails *)
  Fault.schedule_crash (Disk.fault disk)
    (Fault.During_write { write_index = 0; keep_bytes = 64 });
  (try Checkpoint.write disk ~region:0 (snapshot ~ckpt_id:7 ())
   with Fault.Crashed -> ());
  Fault.reset_after_recovery (Disk.fault disk);
  match Checkpoint.read_best disk with
  | Some s ->
    Alcotest.(check int) "survivor used" 6 s.Checkpoint.ckpt_id
  | None -> Alcotest.fail "lost both checkpoints"

let test_multi_chunk_checkpoint () =
  (* enough block entries to spill across several region segments *)
  let disk = fresh_disk () in
  let geom = Disk.geometry disk in
  let entries_needed = (2 * geom.Geometry.segment_bytes / 22) + 100 in
  let s = snapshot ~blocks:(List.init entries_needed block_entry) () in
  Checkpoint.write disk ~region:1 s;
  Alcotest.(check bool) "multi-chunk roundtrip" true
    (Checkpoint.read_region disk ~region:1 = Some s)

let test_oversized_checkpoint_rejected () =
  let disk = fresh_disk () in
  let geom = Disk.geometry disk in
  let region_bytes =
    Lld_core.Disk_layout.region_segments geom * geom.Geometry.segment_bytes
  in
  let entries = (region_bytes / 22) + 10_000 in
  let s = snapshot ~blocks:(List.init entries block_entry) () in
  Alcotest.check_raises "does not fit" Errors.Disk_full (fun () ->
      Checkpoint.write disk ~region:0 s)

let test_layout_properties () =
  List.iter
    (fun geom ->
      let r = Disk_layout.region_segments geom in
      Alcotest.(check bool) "regions positive" true (r > 0);
      Alcotest.(check int) "region 1 after region 0" r
        (Disk_layout.region_first geom ~region:1);
      Alcotest.(check int) "log after regions" (2 * r)
        (Disk_layout.log_first geom);
      Alcotest.(check int) "partition fully used"
        geom.Geometry.num_segments
        (Disk_layout.log_first geom + Disk_layout.log_count geom);
      Alcotest.(check int) "capacity matches log size"
        (Disk_layout.log_count geom * Geometry.blocks_per_segment geom)
        (Disk_layout.block_capacity geom))
    [ Geometry.small; Geometry.paper; Geometry.v ~num_segments:64 () ]

let test_layout_too_small_rejected () =
  Alcotest.check_raises "tiny partition"
    (Invalid_argument "Disk_layout: partition too small for a log") (fun () ->
      ignore (Disk_layout.log_count (Geometry.v ~num_segments:7 ())))

let () =
  Alcotest.run "lld_checkpoint"
    [
      ( "codec",
        [
          Alcotest.test_case "empty roundtrip" `Quick test_encode_decode_empty;
          Alcotest.test_case "populated roundtrip" `Quick
            test_encode_decode_populated;
          Alcotest.test_case "rejects garbage" `Quick test_decode_rejects_garbage;
        ] );
      ( "regions",
        [
          Alcotest.test_case "write/read region" `Quick test_region_write_read;
          Alcotest.test_case "best prefers newest" `Quick
            test_read_best_prefers_newer;
          Alcotest.test_case "torn write falls back" `Quick
            test_torn_checkpoint_write_falls_back;
          Alcotest.test_case "multi-chunk payloads" `Quick
            test_multi_chunk_checkpoint;
          Alcotest.test_case "oversized rejected" `Quick
            test_oversized_checkpoint_rejected;
        ] );
      ( "layout",
        [
          Alcotest.test_case "layout properties" `Quick test_layout_properties;
          Alcotest.test_case "too-small partition rejected" `Quick
            test_layout_too_small_rejected;
        ] );
    ]
