(* The journaling, update-in-place Logical Disk (lib/jld): same client
   interface and ARU semantics as LLD, different storage organisation
   (paper §5.4's "other implementations of the Logical Disk"). *)

module Clock = Lld_sim.Clock
module Geometry = Lld_disk.Geometry
module Fault = Lld_disk.Fault
module Disk = Lld_disk.Disk
module Types = Lld_core.Types
module Errors = Lld_core.Errors
module Summary = Lld_core.Summary
module Jld = Lld_jld.Jld

(* Both implementations satisfy the Logical Disk signature — the
   interchangeability of paper §2, checked by the compiler. *)
module _ : Lld_core.Ld_intf.S = Lld_core.Lld
module _ : Lld_core.Ld_intf.S = Lld_jld.Jld

(* ...so the Minix file system runs on JLD unchanged. *)
module Minix_on_jld = Lld_minixfs.Fs_generic.Make (Lld_jld.Jld)

let block_bytes = 4096

let fresh ?(geom = Geometry.small) () =
  let clock = Clock.create () in
  let disk = Disk.create ~clock geom in
  (disk, Jld.create disk)

let block_data tag =
  let b = Bytes.make block_bytes '\000' in
  Bytes.blit_string (Printf.sprintf "payload-%d-" tag) 0 b 0 10;
  Bytes.set b 12 (Char.chr (tag land 0xff));
  b

let tag_of b = Char.code (Bytes.get b 12)

let append lld list =
  let pred =
    match List.rev (Jld.list_blocks lld list) with
    | [] -> Summary.Head
    | last :: _ -> Summary.After last
  in
  Jld.new_block lld ~list ~pred ()

let crash disk =
  Fault.schedule_crash (Disk.fault disk) (Fault.After_writes 0);
  (try Disk.write disk ~offset:0 (Bytes.make 1 'x') with Fault.Crashed -> ())

let test_basic_ops () =
  let _, lld = fresh () in
  let l = Jld.new_list lld () in
  let b1 = append lld l in
  let b2 = append lld l in
  Jld.write lld b1 (block_data 1);
  Jld.write lld b2 (block_data 2);
  Alcotest.(check int) "b1" 1 (tag_of (Jld.read lld b1));
  Alcotest.(check int) "b2" 2 (tag_of (Jld.read lld b2));
  Alcotest.(check int) "list" 2 (List.length (Jld.list_blocks lld l));
  Jld.delete_block lld b1;
  Alcotest.(check int) "after delete" 1 (List.length (Jld.list_blocks lld l));
  Alcotest.(check bool) "deallocated" false (Jld.block_allocated lld b1)

let test_aru_isolation_and_commit () =
  let _, lld = fresh () in
  let l = Jld.new_list lld () in
  let b = append lld l in
  Jld.write lld b (block_data 1);
  let a = Jld.begin_aru lld in
  Jld.write lld ~aru:a b (block_data 2);
  Alcotest.(check int) "shadow" 2 (tag_of (Jld.read lld ~aru:a b));
  Alcotest.(check int) "committed" 1 (tag_of (Jld.read lld b));
  Jld.end_aru lld a;
  Alcotest.(check int) "merged" 2 (tag_of (Jld.read lld b))

let test_aru_abort () =
  let _, lld = fresh () in
  let l = Jld.new_list lld () in
  let b = append lld l in
  Jld.write lld b (block_data 1);
  let a = Jld.begin_aru lld in
  Jld.write lld ~aru:a b (block_data 9);
  let b2 = Jld.new_block lld ~aru:a ~list:l ~pred:(Summary.After b) () in
  Jld.abort_aru lld a;
  Alcotest.(check int) "write discarded" 1 (tag_of (Jld.read lld b));
  Alcotest.(check bool) "allocation survives abort" true
    (Jld.block_allocated lld b2);
  Alcotest.(check bool) "scavenged" true (Jld.scavenge lld >= 1)

let test_committed_aru_survives_crash () =
  let disk, lld = fresh () in
  let l = Jld.new_list lld () in
  let a = Jld.begin_aru lld in
  let b = Jld.new_block lld ~aru:a ~list:l ~pred:Summary.Head () in
  Jld.write lld ~aru:a b (block_data 42);
  Jld.end_aru lld a;
  Jld.flush lld;
  crash disk;
  let lld2, chunks = Jld.recover disk in
  Alcotest.(check bool) "journal replayed" true (chunks >= 1);
  Alcotest.(check int) "data recovered" 42 (tag_of (Jld.read lld2 b));
  Alcotest.(check int) "list intact" 1 (List.length (Jld.list_blocks lld2 l))

let test_uncommitted_aru_discarded () =
  let disk, lld = fresh () in
  let l = Jld.new_list lld () in
  let b0 = append lld l in
  Jld.write lld b0 (block_data 1);
  Jld.flush lld;
  let a = Jld.begin_aru lld in
  Jld.write lld ~aru:a b0 (block_data 9);
  let b1 = Jld.new_block lld ~aru:a ~list:l ~pred:(Summary.After b0) () in
  Jld.write lld ~aru:a b1 (block_data 8);
  Jld.flush lld (* flush must not commit the ARU *);
  crash disk;
  let lld2, _ = Jld.recover disk in
  Alcotest.(check int) "write undone" 1 (tag_of (Jld.read lld2 b0));
  Alcotest.(check int) "insertion undone" 1
    (List.length (Jld.list_blocks lld2 l));
  Alcotest.(check bool) "orphan allocation swept" false
    (Jld.block_allocated lld2 b1)

let test_unflushed_lost () =
  let disk, lld = fresh () in
  let l = Jld.new_list lld () in
  let b = append lld l in
  Jld.write lld b (block_data 1);
  Jld.flush lld;
  Jld.write lld b (block_data 2) (* committed, never flushed *);
  crash disk;
  let lld2, _ = Jld.recover disk in
  Alcotest.(check int) "persistent version" 1 (tag_of (Jld.read lld2 b))

let test_checkpoint_and_in_place_data () =
  let disk, lld = fresh () in
  let l = Jld.new_list lld () in
  let blocks = List.init 20 (fun _ -> append lld l) in
  List.iteri (fun i b -> Jld.write lld b (block_data i)) blocks;
  Jld.checkpoint lld;
  (* after the checkpoint the data lives at its fixed in-place address *)
  crash disk;
  let lld2, chunks = Jld.recover disk in
  Alcotest.(check int) "nothing left to replay" 0 chunks;
  List.iteri
    (fun i b ->
      Alcotest.(check int) (Printf.sprintf "block %d home" i) i
        (tag_of (Jld.read lld2 b)))
    blocks

let test_journal_fills_and_recycles () =
  (* write more journaled data than the journal holds: automatic
     checkpoints must recycle it *)
  let geom = Geometry.v ~num_segments:24 () in
  let _, lld = fresh ~geom () in
  let l = Jld.new_list lld () in
  let b = append lld l in
  let checkpoints0 = (Jld.counters lld).Lld_core.Counters.checkpoints in
  for i = 0 to 2000 do
    Jld.write lld b (block_data (i land 0xff))
  done;
  Jld.flush lld;
  Alcotest.(check bool) "journal recycled via checkpoints" true
    ((Jld.counters lld).Lld_core.Counters.checkpoints > checkpoints0);
  Alcotest.(check int) "latest data" (2000 land 0xff) (tag_of (Jld.read lld b))

let test_torn_journal_chunk () =
  let disk, lld = fresh () in
  let l = Jld.new_list lld () in
  let b = append lld l in
  Jld.write lld b (block_data 1);
  Jld.flush lld;
  Jld.write lld b (block_data 2);
  Fault.schedule_crash (Disk.fault disk)
    (Fault.During_write { write_index = 0; keep_bytes = 100 });
  (try Jld.flush lld with Fault.Crashed -> ());
  let lld2, _ = Jld.recover disk in
  Alcotest.(check int) "torn chunk ignored" 1 (tag_of (Jld.read lld2 b))

let test_torn_table_write_falls_back () =
  let disk, lld = fresh () in
  let l = Jld.new_list lld () in
  let b = append lld l in
  Jld.write lld b (block_data 5);
  Jld.checkpoint lld;
  Jld.write lld b (block_data 6);
  Jld.flush lld;
  (* the next checkpoint's table write is torn: the chunk flush is write
     1, the in-place data write 2, the table write 3 *)
  Fault.schedule_crash (Disk.fault disk)
    (Fault.During_write { write_index = 1; keep_bytes = 64 });
  (try Jld.checkpoint lld with Fault.Crashed -> ());
  let lld2, _ = Jld.recover disk in
  Alcotest.(check int) "journal carries the day" 6 (tag_of (Jld.read lld2 b))

let test_recover_unformatted_rejected () =
  let clock = Clock.create () in
  let disk = Disk.create ~clock Geometry.small in
  Alcotest.check_raises "no superblock" (Errors.Corrupt "no JLD superblock")
    (fun () -> ignore (Jld.recover disk))

let test_multiple_crash_cycles () =
  let disk, lld = fresh () in
  let l = Jld.new_list lld () in
  let lld = ref lld in
  let blocks = ref [] in
  for round = 1 to 4 do
    let module J = Jld in
    let pred =
      match List.rev (J.list_blocks !lld l) with
      | [] -> Summary.Head
      | last :: _ -> Summary.After last
    in
    let b = J.new_block !lld ~list:l ~pred () in
    J.write !lld b (block_data round);
    J.flush !lld;
    blocks := !blocks @ [ (b, round) ];
    crash disk;
    let recovered, _ = J.recover disk in
    lld := recovered;
    List.iter
      (fun (b, tag) ->
        Alcotest.(check int)
          (Printf.sprintf "round %d block %d" round tag)
          tag
          (tag_of (J.read !lld b)))
      !blocks
  done

let test_minix_fs_on_jld () =
  let module Fs = Minix_on_jld.Fs_impl in
  let module Fsck = Minix_on_jld.Fsck_impl in
  let _, lld = fresh () in
  let fs = Fs.mkfs ~inode_count:512 lld in
  Fs.mkdir fs "/d";
  Fs.create fs "/d/a";
  Fs.write_file fs "/d/a" ~off:0 (Bytes.make 9000 'j');
  Fs.link fs "/d/a" "/d/b";
  Fs.rename fs "/d/a" "/d/c";
  Alcotest.(check int) "size via other name" 9000 (Fs.stat fs "/d/b").Fs.size;
  Fs.unlink fs "/d/b";
  Alcotest.(check (list string)) "tree" [ "c" ] (Fs.readdir fs "/d");
  let report = Fsck.run fs in
  Alcotest.(check bool)
    (Format.asprintf "fsck clean: %a" Fsck.pp_report report)
    true (Fsck.ok report)

let test_minix_fs_on_jld_crash_consistent () =
  let module Fs = Minix_on_jld.Fs_impl in
  let module Fsck = Minix_on_jld.Fsck_impl in
  List.iter
    (fun crash_after ->
      let clock = Clock.create () in
      let disk = Disk.create ~clock Geometry.small in
      let lld = Jld.create disk in
      let fs = Fs.mkfs ~inode_count:512 lld in
      Fs.flush fs;
      Fault.schedule_crash (Disk.fault disk) (Fault.After_writes crash_after);
      (try
         for i = 0 to 199 do
           Fs.mkdir fs (Printf.sprintf "/d%03d" i);
           Fs.create fs (Printf.sprintf "/d%03d/file" i)
         done;
         Fs.flush fs
       with Fault.Crashed -> ());
      Fault.reset_after_recovery (Disk.fault disk);
      let lld2, _ = Jld.recover disk in
      let fs2 = Fs.mount lld2 in
      let report = Fsck.run fs2 in
      Alcotest.(check bool)
        (Format.asprintf "crash@%d: %a" crash_after Fsck.pp_report report)
        true (Fsck.ok report))
    [ 0; 1; 2; 3; 5 ]

let test_random_workload_crash_sweep () =
  (* the JLD analogue of the LLD torture runs: randomized FS workloads
     cut at many crash points must always recover consistent *)
  let module Fs = Minix_on_jld.Fs_impl in
  let module Fsck = Minix_on_jld.Fsck_impl in
  let module Rng = Lld_sim.Rng in
  List.iter
    (fun crash_after ->
      let clock = Clock.create () in
      let disk = Disk.create ~clock Geometry.small in
      let lld = Jld.create disk in
      let fs = Fs.mkfs ~inode_count:512 lld in
      Fs.flush fs;
      Fault.schedule_crash (Disk.fault disk) (Fault.After_writes crash_after);
      let rng = Rng.create ~seed:(77 + crash_after) in
      let dir d = Printf.sprintf "/d%d" (d mod 6) in
      let file d f = Printf.sprintf "%s/f%d" (dir d) (f mod 8) in
      (try
         for d = 0 to 5 do
           Fs.mkdir fs (dir d)
         done;
         for _ = 1 to 250 do
           let d = Rng.int rng 6 in
           let f = Rng.int rng 8 in
           let ig op =
             try op () with
             | Fs.Not_found_path _ | Fs.Already_exists _ | Fs.Is_a_directory _
             | Fs.Not_a_directory _ | Fs.Directory_not_empty _
             | Fs.Invalid_name _ | Fs.Out_of_inodes ->
               ()
           in
           match Rng.int rng 8 with
           | 0 | 1 | 2 -> ig (fun () -> Fs.create fs (file d f))
           | 3 | 4 ->
             let n = 256 + Rng.int rng 6000 in
             ig (fun () -> Fs.write_file fs (file d f) ~off:0 (Bytes.make n 'j'))
           | 5 -> ig (fun () -> Fs.unlink fs (file d f))
           | 6 ->
             let d2 = Rng.int rng 6 in
             let f2 = Rng.int rng 8 in
             ig (fun () -> Fs.rename fs (file d f) (file d2 f2))
           | _ ->
             ig (fun () -> ignore (Fs.read_file fs (file d f) ~off:0 ~len:512))
         done;
         Fs.flush fs;
         Fault.schedule_crash (Disk.fault disk) (Fault.After_writes 0);
         try Disk.write disk ~offset:0 (Bytes.make 1 'x')
         with Fault.Crashed -> ()
       with Fault.Crashed -> ());
      let lld2, _ = Jld.recover disk in
      let fs2 = Fs.mount lld2 in
      let report = Fsck.run fs2 in
      Alcotest.(check bool)
        (Format.asprintf "crash@%d: %a" crash_after Fsck.pp_report report)
        true (Fsck.ok report))
    (List.init 12 (fun i -> i))

let test_reads_stay_fast_after_random_writes () =
  (* the structural difference from LLD: in-place addresses never
     fragment, so a sequential read after random rewrites is as fast as
     after sequential writes *)
  let geom = Geometry.v ~num_segments:64 () in
  let clock = Clock.create () in
  let disk = Disk.create ~clock geom in
  let lld = Jld.create disk in
  let l = Jld.new_list lld () in
  let n = 512 in
  let blocks = Array.init n (fun _ -> append lld l) in
  let rng = Lld_sim.Rng.create ~seed:5 in
  let order = Array.init n Fun.id in
  Lld_sim.Rng.shuffle rng order;
  Array.iter (fun i -> Jld.write lld blocks.(i) (block_data i)) order;
  Jld.checkpoint lld;
  (* sequential logical read *)
  let t0 = Clock.now_ns clock in
  Array.iter (fun b -> ignore (Jld.read lld b)) blocks;
  let seq_read_ns = Clock.now_ns clock - t0 in
  let mbps =
    float_of_int (n * 4096) /. 1024. /. 1024.
    /. (float_of_int seq_read_ns /. 1e9)
  in
  Alcotest.(check bool)
    (Printf.sprintf "sequential read after random writes fast (%.2f MB/s)" mbps)
    true (mbps > 1.0)

let () =
  Alcotest.run "lld_jld"
    [
      ( "ld-interface",
        [
          Alcotest.test_case "basic operations" `Quick test_basic_ops;
          Alcotest.test_case "ARU isolation and commit" `Quick
            test_aru_isolation_and_commit;
          Alcotest.test_case "ARU abort" `Quick test_aru_abort;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "committed ARU survives" `Quick
            test_committed_aru_survives_crash;
          Alcotest.test_case "uncommitted ARU discarded" `Quick
            test_uncommitted_aru_discarded;
          Alcotest.test_case "unflushed lost" `Quick test_unflushed_lost;
          Alcotest.test_case "checkpoint writes data home" `Quick
            test_checkpoint_and_in_place_data;
          Alcotest.test_case "journal recycles" `Quick
            test_journal_fills_and_recycles;
          Alcotest.test_case "torn chunk ignored" `Quick test_torn_journal_chunk;
          Alcotest.test_case "torn table write falls back" `Quick
            test_torn_table_write_falls_back;
          Alcotest.test_case "unformatted rejected" `Quick
            test_recover_unformatted_rejected;
          Alcotest.test_case "multiple crash cycles" `Quick
            test_multiple_crash_cycles;
        ] );
      ( "minix-on-jld",
        [
          Alcotest.test_case "file system runs unchanged" `Quick
            test_minix_fs_on_jld;
          Alcotest.test_case "crash-consistent with ARUs" `Slow
            test_minix_fs_on_jld_crash_consistent;
          Alcotest.test_case "random workload crash sweep" `Slow
            test_random_workload_crash_sweep;
        ] );
      ( "structure",
        [
          Alcotest.test_case "reads don't fragment" `Quick
            test_reads_stay_fast_after_random_writes;
        ] );
    ]
