open Helpers
module Fs = Lld_minixfs.Fs
module Fsck = Lld_minixfs.Fsck
module Fault = Lld_disk.Fault

(* The paper's central claim (§5.1): with create/delete bracketed in
   ARUs, the file system is consistent after any crash — no fsck
   needed.  Without ARUs (the "old" configuration), a crash can leave
   half-created files behind. *)

let crash disk =
  Fault.schedule_crash (Disk.fault disk) (Fault.After_writes 0);
  (try Disk.write disk ~offset:0 (Bytes.make 1 'x') with Fault.Crashed -> ())

let payload n = Bytes.init n (fun i -> Char.chr ((i * 13) land 0xff))

(* Run a workload that crashes the disk at the [k]-th segment write
   (counting from the start of the workload), then recover and mount.
   Returns None if the workload finished without hitting the crash. *)
let crash_during_workload ?geom ~fs_config ~lld_config ~crash_after_writes
    workload =
  let disk, lld = fresh_lld ~config:lld_config ?geom () in
  let fs = Fs.mkfs ~config:fs_config ~inode_count:1024 lld in
  Fs.flush fs;
  Fault.schedule_crash (Disk.fault disk) (Fault.After_writes crash_after_writes);
  let crashed =
    match workload fs with
    | () ->
      (* never hit the crash point: force it now *)
      crash disk;
      true
    | exception Fault.Crashed -> true
  in
  assert crashed;
  let lld2, _report = Lld.recover ~config:lld_config disk in
  Fs.mount ~config:fs_config lld2

(* 32 KB segments: a seal (the crash granularity) happens every few
   operations, so crash points land inside operations, not only between
   them *)
let tiny_segments =
  Geometry.v ~segment_bytes:(32 * 1024) ~num_segments:256 ()

let create_files fs =
  for i = 0 to 199 do
    let path = Printf.sprintf "/f%03d" i in
    Fs.create fs path;
    Fs.write_file fs path ~off:0 (payload 1024)
  done;
  Fs.flush fs

(* Sweep over crash points: with ARUs the recovered file system must be
   consistent at every single one. *)
let test_aru_crash_sweep_always_consistent () =
  List.iter
    (fun crash_after_writes ->
      let fs =
        crash_during_workload ~geom:tiny_segments ~fs_config:Fs.config_new
          ~lld_config:Config.default ~crash_after_writes create_files
      in
      let report = Fsck.run fs in
      Alcotest.(check bool)
        (Format.asprintf "crash@%d: %a" crash_after_writes Fsck.pp_report
           report)
        true (Fsck.ok report);
      (* every surviving file is well-formed: creation was atomic, and
         if the (non-atomic, paper §5.1) data write's size update became
         persistent then so did the data before it *)
      List.iter
        (fun name ->
          let path = "/" ^ name in
          let st = Fs.stat fs path in
          Alcotest.(check bool)
            (path ^ " size is 0 or 1024")
            true
            (st.Fs.size = 0 || st.Fs.size = 1024);
          if st.Fs.size = 1024 then
            Alcotest.(check bytes) (path ^ " content") (payload 1024)
              (Fs.read_file fs path ~off:0 ~len:1024))
        (Fs.readdir fs "/"))
    [ 0; 1; 2; 3; 5; 8; 13; 21; 34; 55 ]

let test_aru_crash_mid_delete_consistent () =
  let workload fs =
    for i = 0 to 99 do
      Fs.create fs (Printf.sprintf "/f%03d" i);
      Fs.write_file fs (Printf.sprintf "/f%03d" i) ~off:0 (payload 4096)
    done;
    Fs.flush fs;
    for i = 0 to 99 do
      Fs.unlink fs (Printf.sprintf "/f%03d" i)
    done;
    Fs.flush fs
  in
  List.iter
    (fun crash_after_writes ->
      let fs =
        crash_during_workload ~geom:tiny_segments
          ~fs_config:Fs.config_new_delete ~lld_config:Config.default
          ~crash_after_writes workload
      in
      let report = Fsck.run fs in
      Alcotest.(check bool)
        (Format.asprintf "crash@%d: %a" crash_after_writes Fsck.pp_report
           report)
        true (Fsck.ok report))
    [ 5; 17; 40; 80; 120 ]

(* A surgical mid-operation crash for the no-ARU configuration: crash
   between the two meta-data writes of one create.  We find such a point
   by sweeping crash positions until fsck reports a problem. *)
let test_no_arus_can_corrupt_and_fsck_repairs () =
  let found = ref None in
  let crash_points = List.init 40 (fun i -> i) in
  List.iter
    (fun k ->
      if !found = None then begin
        let fs =
          crash_during_workload ~geom:tiny_segments ~fs_config:Fs.config_old
            ~lld_config:Config.old_lld ~crash_after_writes:k
            (fun fs ->
              (* one file per fresh directory: the directory entry needs
                 a brand-new block, so segments fill *inside* creates —
                 a crash there separates the file's inode from its
                 directory entry *)
              for i = 0 to 99 do
                Fs.mkdir fs (Printf.sprintf "/d%03d" i);
                Fs.create fs (Printf.sprintf "/d%03d/file" i)
              done;
              Fs.flush fs)
        in
        let report = Fsck.run fs in
        if not (Fsck.ok report) then found := Some (fs, report)
      end)
    crash_points;
  match !found with
  | None ->
    (* The sweep can miss the window; that is not a correctness failure
       of the system under test, but the demonstration is expected to
       find one. *)
    Alcotest.fail "no crash point produced an inconsistency without ARUs"
  | Some (fs, report) ->
    Alcotest.(check bool) "problems found without ARUs" false (Fsck.ok report);
    (* fsck with repair restores consistency *)
    let repaired = Fsck.run ~repair:true fs in
    Alcotest.(check bool) "repair acted" true (repaired.Fsck.repaired > 0);
    let clean = Fsck.run fs in
    Alcotest.(check bool)
      (Format.asprintf "clean after repair: %a" Fsck.pp_report clean)
      true (Fsck.ok clean)

let test_fsck_detects_planted_corruption () =
  (* plant a dangling dirent by hand and check detection + repair *)
  let disk, lld = fresh_lld () in
  ignore disk;
  let fs = Fs.mkfs ~inode_count:512 lld in
  Fs.create fs "/real";
  (* write a dirent pointing at a free inode straight into the root
     directory file *)
  let root_ino = Lld_minixfs.Layout.root_ino in
  ignore root_ino;
  Fs.create fs "/victim";
  let victim_ino = (Fs.stat fs "/victim").Fs.ino in
  (* free the inode behind fsck's back (simulating lost meta-data) *)
  Fs.repair_free_inode fs victim_ino;
  let report = Fsck.run fs in
  Alcotest.(check bool) "dangling dirent detected" true
    (List.exists
       (function
         | Fsck.Dangling_dirent { ino; _ } -> ino = victim_ino
         | Fsck.Inode_without_list _ | Fsck.Shared_list _
         | Fsck.Size_mismatch _ | Fsck.Unreachable_inode _
         | Fsck.Bad_nlinks _ | Fsck.Orphan_list _ | Fsck.Orphan_block _ ->
           false)
       report.Fsck.problems);
  ignore (Fsck.run ~repair:true fs);
  Alcotest.(check bool) "clean after repair" true (Fsck.ok (Fsck.run fs))

let test_torture_with_arus () =
  (* the exhaustive version of the sweep above: randomized workloads
     with renames, links and truncates, each cut at many crash points.
     Seed 10 is the seed that once exposed the segment-slot-coalescing
     atomicity hole (see Segment.scope). *)
  List.iter
    (fun seed ->
      let r =
        Lld_workload.Torture.run
          { Lld_workload.Torture.seed; operations = 250; crash_points = 16 }
      in
      List.iter
        (fun (o : Lld_workload.Torture.outcome) ->
          Alcotest.(check bool)
            (Format.asprintf "seed %d crash@%d: %a" seed
               o.Lld_workload.Torture.crash_after
               (Format.pp_print_list Fsck.pp_problem)
               o.Lld_workload.Torture.problems)
            true o.Lld_workload.Torture.consistent)
        r.Lld_workload.Torture.outcomes)
    [ 3; 10; 27 ]

let test_recovery_then_continued_use () =
  (* after a crash and recovery, the file system keeps working *)
  let disk, lld = fresh_lld () in
  let fs = Fs.mkfs ~inode_count:1024 lld in
  Fs.mkdir fs "/d";
  Fs.create fs "/d/a";
  Fs.write_file fs "/d/a" ~off:0 (payload 2048);
  Fs.flush fs;
  crash disk;
  let lld2, _ = Lld.recover disk in
  let fs2 = Fs.mount lld2 in
  Alcotest.(check bytes) "old data" (payload 2048)
    (Fs.read_file fs2 "/d/a" ~off:0 ~len:2048);
  Fs.create fs2 "/d/b";
  Fs.write_file fs2 "/d/b" ~off:0 (payload 512);
  Fs.unlink fs2 "/d/a";
  Alcotest.(check (list string)) "directory evolved" [ "b" ]
    (Fs.readdir fs2 "/d");
  Alcotest.(check bool) "still consistent" true (Fsck.ok (Fsck.run fs2))

let () =
  Alcotest.run "lld_fsck"
    [
      ( "aru-consistency",
        [
          Alcotest.test_case "crash sweep: always consistent with ARUs" `Slow
            test_aru_crash_sweep_always_consistent;
          Alcotest.test_case "crash mid-delete consistent" `Slow
            test_aru_crash_mid_delete_consistent;
        ] );
      ( "no-aru-corruption",
        [
          Alcotest.test_case "no ARUs: corruption found and repaired" `Slow
            test_no_arus_can_corrupt_and_fsck_repairs;
        ] );
      ( "torture",
        [
          Alcotest.test_case "randomized workloads consistent at every crash"
            `Slow test_torture_with_arus;
        ] );
      ( "fsck",
        [
          Alcotest.test_case "detects planted corruption" `Quick
            test_fsck_detects_planted_corruption;
          Alcotest.test_case "recovery then continued use" `Quick
            test_recovery_then_continued_use;
        ] );
    ]
